//! Visualization-module cost models (paper Section 4.4).
//!
//! The central-management node needs run-time estimates of how long each
//! visualization module will take on each candidate node; these estimates
//! (together with the EPB estimates from `ricsa-transport`) are the inputs to
//! the dynamic-programming pipeline mapping.  Three models are implemented,
//! following the paper's equations, each with a calibration procedure that
//! measures its constants on test data:
//!
//! * **Isosurface extraction** (Eqs. 4–6):
//!   `t_extraction = n_blocks · t_block(S_block)` with
//!   `t_block = S_block · Σ_i T_Case(i) · P_Case(i)`, plus a rendering cost
//!   proportional to the number of extracted triangles.
//! * **Ray casting** (Eq. 7):
//!   `t = n_blocks · n_rays · n_samples · t_sample`.
//! * **Streamline** (Eq. 8): `t = n_seeds · n_steps · T_advection`.
//!
//! The calibrated per-unit times are normalized to a reference node of
//! compute power 1.0; the paper's per-node scaling `1/p_i` is applied by the
//! pipeline model when a module is placed on a node.

use crate::camera::Camera;
use crate::cell::CASE_CLASS_COUNT;
use crate::isosurface::{extract_block, extract_isosurface, CaseHistogram};
use crate::raycast::{raycast, RaycastConfig};
use crate::streamline::{grid_seeds, trace_streamlines, StreamlineConfig};
use crate::transfer::TransferFunction;
use ricsa_vizdata::field::{Dims, ScalarField};
use ricsa_vizdata::octree::Octree;
use ricsa_vizdata::synth::{SyntheticVolume, VolumeKind};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Cost model for block-level isosurface extraction and rendering.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IsosurfaceCostModel {
    /// Measured per-cell extraction time for each of the 15 case classes, on
    /// the reference node (seconds) — the paper's `T_Case(i)`.
    pub t_case: [f64; CASE_CLASS_COUNT],
    /// Case probabilities measured during calibration — `P_Case(i)`.
    pub p_case: [f64; CASE_CLASS_COUNT],
    /// Mean triangles emitted per cell of each class — `n_triangle(i)`.
    pub triangles_per_case: [f64; CASE_CLASS_COUNT],
    /// Triangles the reference node can render per second.
    pub triangles_per_second: f64,
}

impl IsosurfaceCostModel {
    /// The per-block extraction time `t_block(S_block)` of Eq. 5.
    pub fn t_block(&self, cells_per_block: usize) -> f64 {
        let per_cell: f64 = self
            .t_case
            .iter()
            .zip(&self.p_case)
            .map(|(t, p)| t * p)
            .sum();
        cells_per_block as f64 * per_cell
    }

    /// Predicted extraction time (Eq. 4) for `n_blocks` active blocks of
    /// `cells_per_block` cells on a node of relative compute power `power`.
    pub fn predict_extraction(&self, n_blocks: usize, cells_per_block: usize, power: f64) -> f64 {
        n_blocks as f64 * self.t_block(cells_per_block) / power.max(1e-9)
    }

    /// Expected number of triangles produced (the inner sum of Eq. 6).
    pub fn expected_triangles(&self, n_blocks: usize, cells_per_block: usize) -> f64 {
        let per_cell: f64 = self
            .triangles_per_case
            .iter()
            .zip(&self.p_case)
            .map(|(n, p)| n * p)
            .sum();
        n_blocks as f64 * cells_per_block as f64 * per_cell
    }

    /// Predicted rendering time (Eq. 6 divided by the rendering rate) on a
    /// node of relative compute power `power`.
    pub fn predict_rendering(&self, n_blocks: usize, cells_per_block: usize, power: f64) -> f64 {
        self.expected_triangles(n_blocks, cells_per_block)
            / (self.triangles_per_second * power.max(1e-9))
    }

    /// Calibrate the model by running the real extraction on sampled test
    /// volumes over a sweep of isovalues, as Section 4.4.1 prescribes.
    pub fn calibrate(resolution: usize, isovalue_samples: usize, block_size: usize) -> Self {
        let volumes = [
            SyntheticVolume::new(VolumeKind::RadialRamp, Dims::cube(resolution), 11).generate(),
            SyntheticVolume::new(VolumeKind::Jet, Dims::cube(resolution), 12).generate(),
            SyntheticVolume::new(VolumeKind::BlastWave, Dims::cube(resolution), 13).generate(),
        ];
        let mut histogram = CaseHistogram::default();
        let mut class_time = [0.0f64; CASE_CLASS_COUNT];
        let mut class_cells = [0u64; CASE_CLASS_COUNT];
        let mut total_triangles = 0u64;
        let mut triangle_time = 0.0f64;

        for field in &volumes {
            let (lo, hi) = field.value_range();
            let octree = Octree::build(field, block_size);
            for k in 0..isovalue_samples.max(1) {
                let iso = lo + (hi - lo) * (k as f32 + 0.5) / isovalue_samples.max(1) as f32;
                for block in octree.blocks.iter().filter(|b| b.intersects_isovalue(iso)) {
                    let start = Instant::now();
                    let (mesh, h) = extract_block(field, block, iso);
                    let elapsed = start.elapsed().as_secs_f64();
                    let cells = h.total_cells().max(1);
                    // Attribute the elapsed time to classes in proportion to
                    // their cell counts within this block (the per-class
                    // breakdown cannot be timed individually at this grain).
                    for i in 0..CASE_CLASS_COUNT {
                        let share = h.counts[i] as f64 / cells as f64;
                        class_time[i] += elapsed * share;
                        class_cells[i] += h.counts[i];
                    }
                    histogram.merge(&h);
                    total_triangles += mesh.triangle_count() as u64;
                    triangle_time += elapsed;
                }
            }
        }

        let mut t_case = [0.0f64; CASE_CLASS_COUNT];
        for i in 0..CASE_CLASS_COUNT {
            if class_cells[i] > 0 {
                t_case[i] = class_time[i] / class_cells[i] as f64;
            }
        }
        // Give never-observed classes the mean active-class cost so the
        // model stays defined for unusual datasets.
        let observed: Vec<f64> = (1..CASE_CLASS_COUNT)
            .filter(|&i| class_cells[i] > 0)
            .map(|i| t_case[i])
            .collect();
        let mean_active = if observed.is_empty() {
            1e-7
        } else {
            observed.iter().sum::<f64>() / observed.len() as f64
        };
        for i in 1..CASE_CLASS_COUNT {
            if class_cells[i] == 0 {
                t_case[i] = mean_active;
            }
        }

        // Rendering rate: estimate from a rasterization of a calibration
        // mesh; avoid division by zero for degenerate calibrations.
        let triangles_per_second = estimate_render_rate(&volumes[0]);

        let _ = (total_triangles, triangle_time);
        IsosurfaceCostModel {
            t_case,
            p_case: histogram.probabilities(),
            triangles_per_case: histogram.triangles_per_cell(),
            triangles_per_second,
        }
    }
}

fn estimate_render_rate(field: &ScalarField) -> f64 {
    let (lo, hi) = field.value_range();
    let iso = lo + 0.5 * (hi - lo);
    let result = extract_isosurface(field, iso, 16);
    if result.mesh.is_empty() {
        return 1e6;
    }
    let cam = Camera::with_viewport(256, 256);
    let start = Instant::now();
    let _ = crate::render::render_mesh(&result.mesh, &cam, [0.8, 0.8, 0.8]);
    let elapsed = start.elapsed().as_secs_f64().max(1e-6);
    result.mesh.triangle_count() as f64 / elapsed
}

/// Cost model for ray casting (Eq. 7).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RaycastCostModel {
    /// Measured per-sample compositing time on the reference node, seconds.
    pub t_sample: f64,
}

impl RaycastCostModel {
    /// Predicted time for casting `n_rays` rays with `n_samples` samples per
    /// ray through `n_blocks` non-empty blocks, on a node of power `power`.
    pub fn predict(&self, n_blocks: usize, n_rays: usize, n_samples: usize, power: f64) -> f64 {
        n_blocks as f64 * n_rays as f64 * n_samples as f64 * self.t_sample / power.max(1e-9)
    }

    /// Calibrate `t_sample` by timing a real ray-casting pass on a test
    /// volume, as Section 4.4.2 prescribes.
    pub fn calibrate(resolution: usize) -> Self {
        let field =
            SyntheticVolume::new(VolumeKind::RadialRamp, Dims::cube(resolution), 21).generate();
        let cam = Camera::with_viewport(128, 128);
        let tf = TransferFunction::grayscale_ramp(-1.0, 1.0);
        let config = RaycastConfig::without_early_termination();
        let start = Instant::now();
        let (_, stats) = raycast(&field, &cam, &tf, &config);
        let elapsed = start.elapsed().as_secs_f64();
        RaycastCostModel {
            t_sample: elapsed / stats.samples.max(1) as f64,
        }
    }
}

/// Cost model for streamline generation (Eq. 8).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamlineCostModel {
    /// Measured time per advection step on the reference node, seconds.
    pub t_advection: f64,
}

impl StreamlineCostModel {
    /// Predicted time to trace `n_seeds` streamlines of `n_steps` advection
    /// steps each on a node of power `power`.
    pub fn predict(&self, n_seeds: usize, n_steps: usize, power: f64) -> f64 {
        n_seeds as f64 * n_steps as f64 * self.t_advection / power.max(1e-9)
    }

    /// Calibrate `T_advection` by tracing streamlines through a test field.
    pub fn calibrate(resolution: usize) -> Self {
        let vol = SyntheticVolume::new(VolumeKind::Jet, Dims::cube(resolution), 31);
        let field = vol.generate_vector();
        let seeds = grid_seeds(&field, 8, 1.0);
        let config = StreamlineConfig {
            max_steps: 200,
            ..StreamlineConfig::default()
        };
        let start = Instant::now();
        let set = trace_streamlines(&field, &seeds, &config);
        let elapsed = start.elapsed().as_secs_f64();
        StreamlineCostModel {
            t_advection: elapsed / set.total_steps().max(1) as f64,
        }
    }
}

/// The per-module computational complexity `c_j` used by the pipeline delay
/// model: time on the reference node per input byte, together with the
/// output/input size ratio the module exhibits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModuleCost {
    /// Seconds of processing per input byte on a node of power 1.0.
    pub seconds_per_byte: f64,
    /// Output bytes produced per input byte.
    pub output_ratio: f64,
}

impl ModuleCost {
    /// Time to process `input_bytes` on a node of relative power `power`.
    pub fn time(&self, input_bytes: f64, power: f64) -> f64 {
        self.seconds_per_byte * input_bytes / power.max(1e-9)
    }

    /// Output size for a given input size.
    pub fn output_bytes(&self, input_bytes: f64) -> f64 {
        self.output_ratio * input_bytes
    }
}

/// A database of per-module costs for the standard RICSA isosurface pipeline
/// (filter → isosurface extraction → rendering), derived from the calibrated
/// models.  These are the `c_j` / `m_j` inputs handed to `ricsa-pipemap`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineCostDb {
    /// Filtering/preprocessing module.
    pub filter: ModuleCost,
    /// Isosurface extraction module.
    pub isosurface: ModuleCost,
    /// Rendering module.
    pub rendering: ModuleCost,
    /// Size in bytes of the final image shipped to the client.
    pub image_bytes: f64,
}

impl PipelineCostDb {
    /// Build a cost database from calibrated models and pipeline parameters.
    ///
    /// * `iso` — the calibrated isosurface model,
    /// * `block_size` — octree block edge length,
    /// * `active_fraction` — fraction of blocks expected to intersect the
    ///   isovalue (measured during calibration or estimated),
    /// * `image_pixels` — viewport pixel count for the final image.
    pub fn from_calibration(
        iso: &IsosurfaceCostModel,
        block_size: usize,
        active_fraction: f64,
        image_pixels: usize,
    ) -> Self {
        let cells_per_block = block_size.saturating_sub(1).max(1).pow(3);
        let block_bytes = (block_size.pow(3) * 4) as f64;
        // Extraction: seconds per active-block byte, scaled by the fraction
        // of blocks that are active at a typical isovalue.
        let extraction_time_per_block = iso.t_block(cells_per_block);
        let seconds_per_byte_iso =
            active_fraction.clamp(0.0, 1.0) * extraction_time_per_block / block_bytes;
        // Triangles produced per input byte -> output ratio for the mesh
        // (36 bytes per triangle: 3 vertices x (position only counted here),
        // matching TriangleMesh::nbytes per unwelded triangle / 2 for the
        // typical index sharing).
        let tri_per_cell: f64 = iso
            .triangles_per_case
            .iter()
            .zip(&iso.p_case)
            .map(|(n, p)| n * p)
            .sum();
        let triangles_per_byte =
            active_fraction * tri_per_cell * cells_per_block as f64 / block_bytes;
        let mesh_bytes_per_triangle = 76.0; // 3 pos + 3 normals (72B) + 3 u32 indices / shared
        let iso_output_ratio = (triangles_per_byte * mesh_bytes_per_triangle).max(1e-4);

        // Rendering: seconds per mesh byte.
        let seconds_per_triangle = 1.0 / iso.triangles_per_second.max(1.0);
        let seconds_per_mesh_byte = seconds_per_triangle / mesh_bytes_per_triangle;

        let image_bytes = (image_pixels * 4) as f64;

        PipelineCostDb {
            filter: ModuleCost {
                // Filtering touches every byte once; calibrated as a simple
                // pass over memory (order 1 ns/byte on the reference node).
                seconds_per_byte: 2.0e-9,
                output_ratio: 1.0,
            },
            isosurface: ModuleCost {
                seconds_per_byte: seconds_per_byte_iso.max(1e-12),
                output_ratio: iso_output_ratio,
            },
            rendering: ModuleCost {
                seconds_per_byte: seconds_per_mesh_byte.max(1e-12),
                output_ratio: 0.0, // replaced by the fixed image size
            },
            image_bytes,
        }
    }

    /// A representative default calibrated on small volumes — useful for
    /// tests and quick experiments where a full calibration pass would be
    /// wastefully slow.  The constants are in the range measured on a
    /// ~2.5 GHz reference core.
    pub fn representative() -> Self {
        PipelineCostDb {
            filter: ModuleCost {
                seconds_per_byte: 2.0e-9,
                output_ratio: 1.0,
            },
            isosurface: ModuleCost {
                seconds_per_byte: 2.5e-8,
                output_ratio: 0.35,
            },
            rendering: ModuleCost {
                seconds_per_byte: 6.0e-9,
                output_ratio: 0.0,
            },
            image_bytes: 512.0 * 512.0 * 4.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_iso_model() -> IsosurfaceCostModel {
        IsosurfaceCostModel::calibrate(20, 3, 8)
    }

    #[test]
    fn calibrated_isosurface_model_is_sane() {
        let m = quick_iso_model();
        // Probabilities form a distribution.
        let sum: f64 = m.p_case.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // Per-cell times are non-negative and not absurd (< 1 ms per cell).
        assert!(m.t_case.iter().all(|&t| (0.0..0.001).contains(&t)));
        // Active classes emit triangles on average; the trivial class none.
        assert_eq!(m.triangles_per_case[0], 0.0);
        assert!(m.triangles_per_case.iter().any(|&t| t > 0.0));
        assert!(m.triangles_per_second > 1000.0);
    }

    #[test]
    fn extraction_prediction_scales_linearly_in_blocks_and_inverse_power() {
        let m = quick_iso_model();
        let t1 = m.predict_extraction(10, 343, 1.0);
        let t2 = m.predict_extraction(20, 343, 1.0);
        let t4 = m.predict_extraction(10, 343, 4.0);
        assert!(t1 > 0.0);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
        assert!((t1 / t4 - 4.0).abs() < 1e-9);
        assert!(m.predict_rendering(10, 343, 1.0) > 0.0);
        assert!(m.expected_triangles(10, 343) > 0.0);
    }

    #[test]
    fn extraction_prediction_tracks_measurement_within_factor_three() {
        // Calibrate on small volumes, then predict the extraction time of a
        // different volume and compare against a measurement.  The paper
        // claims "quick and accurate run-time estimates"; a factor-3 band is
        // a conservative check that the model is in the right regime while
        // staying robust to CI noise.
        let m = quick_iso_model();
        let field = SyntheticVolume::new(VolumeKind::BlastWave, Dims::cube(40), 99).generate();
        let octree = Octree::build(&field, 8);
        let (lo, hi) = field.value_range();
        let iso = lo + 0.6 * (hi - lo);
        let active = octree.active_block_count(iso);
        let predicted = m.predict_extraction(active, octree.cells_per_block(), 1.0);
        let start = Instant::now();
        let _ = extract_isosurface(&field, iso, 8);
        let measured = start.elapsed().as_secs_f64();
        let ratio = predicted / measured.max(1e-9);
        assert!(
            (0.2..5.0).contains(&ratio),
            "prediction {predicted:.6}s vs measurement {measured:.6}s (ratio {ratio:.2})"
        );
    }

    #[test]
    fn raycast_model_predicts_linear_scaling() {
        let m = RaycastCostModel { t_sample: 1e-8 };
        let base = m.predict(4, 1000, 100, 1.0);
        assert!((m.predict(8, 1000, 100, 1.0) / base - 2.0).abs() < 1e-9);
        assert!((m.predict(4, 2000, 100, 1.0) / base - 2.0).abs() < 1e-9);
        assert!((base / m.predict(4, 1000, 100, 2.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn raycast_calibration_produces_plausible_sample_time() {
        let m = RaycastCostModel::calibrate(24);
        assert!(
            m.t_sample > 1e-10 && m.t_sample < 1e-4,
            "t_sample {}",
            m.t_sample
        );
    }

    #[test]
    fn streamline_model_and_calibration() {
        let m = StreamlineCostModel::calibrate(24);
        assert!(
            m.t_advection > 1e-10 && m.t_advection < 1e-3,
            "t_advection {}",
            m.t_advection
        );
        let t = m.predict(100, 200, 1.0);
        assert!((m.predict(200, 200, 1.0) / t - 2.0).abs() < 1e-9);
        assert!((t / m.predict(100, 200, 4.0) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn module_cost_and_pipeline_db() {
        let db = PipelineCostDb::representative();
        let input = 16.0e6;
        let t = db.isosurface.time(input, 1.0);
        assert!(t > 0.0);
        assert!((db.isosurface.time(input, 8.0) - t / 8.0).abs() < 1e-12);
        assert_eq!(db.filter.output_bytes(input), input);
        assert!(db.isosurface.output_bytes(input) > 0.0);
        assert!(db.image_bytes > 0.0);
    }

    #[test]
    fn pipeline_db_from_calibration_is_consistent() {
        let iso = quick_iso_model();
        let db = PipelineCostDb::from_calibration(&iso, 8, 0.3, 512 * 512);
        assert!(db.isosurface.seconds_per_byte > 0.0);
        assert!(db.isosurface.output_ratio > 0.0);
        assert!(db.rendering.seconds_per_byte > 0.0);
        assert_eq!(db.image_bytes, 512.0 * 512.0 * 4.0);
        // The filter stage passes data through unchanged.
        assert_eq!(db.filter.output_ratio, 1.0);
    }
}
