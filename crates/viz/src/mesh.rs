//! Triangle meshes produced by the transformation (isosurface) stage.
//!
//! The mesh is the intermediate "geometric primitives" data the paper's
//! pipeline may ship between a computing-service node and the rendering
//! node, so its byte size matters to the delay model as much as its
//! geometry does to the renderer.

use serde::{Deserialize, Serialize};

/// An indexed triangle mesh with per-vertex normals.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TriangleMesh {
    /// Vertex positions in dataset (voxel) space.
    pub positions: Vec<[f32; 3]>,
    /// Per-vertex unit normals.
    pub normals: Vec<[f32; 3]>,
    /// Vertex indices, three per triangle.
    pub indices: Vec<u32>,
}

impl TriangleMesh {
    /// An empty mesh.
    pub fn new() -> Self {
        TriangleMesh::default()
    }

    /// Number of triangles.
    pub fn triangle_count(&self) -> usize {
        self.indices.len() / 3
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.positions.len()
    }

    /// Whether the mesh has no triangles.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Size of the mesh in bytes when shipped downstream (positions +
    /// normals + indices).
    pub fn nbytes(&self) -> usize {
        self.positions.len() * 12 + self.normals.len() * 12 + self.indices.len() * 4
    }

    /// Append a triangle given three positions and a shared normal,
    /// creating three new vertices (no welding).
    pub fn push_triangle(&mut self, a: [f32; 3], b: [f32; 3], c: [f32; 3], normal: [f32; 3]) {
        let base = self.positions.len() as u32;
        self.positions.extend_from_slice(&[a, b, c]);
        self.normals.extend_from_slice(&[normal, normal, normal]);
        self.indices.extend_from_slice(&[base, base + 1, base + 2]);
    }

    /// Merge another mesh into this one.
    pub fn append(&mut self, other: &TriangleMesh) {
        let base = self.positions.len() as u32;
        self.positions.extend_from_slice(&other.positions);
        self.normals.extend_from_slice(&other.normals);
        self.indices.extend(other.indices.iter().map(|i| i + base));
    }

    /// Axis-aligned bounding box, or `None` for an empty mesh.
    pub fn bounding_box(&self) -> Option<([f32; 3], [f32; 3])> {
        if self.positions.is_empty() {
            return None;
        }
        let mut lo = [f32::INFINITY; 3];
        let mut hi = [f32::NEG_INFINITY; 3];
        for p in &self.positions {
            for k in 0..3 {
                lo[k] = lo[k].min(p[k]);
                hi[k] = hi[k].max(p[k]);
            }
        }
        Some((lo, hi))
    }

    /// Total surface area of the mesh.
    pub fn surface_area(&self) -> f64 {
        let mut area = 0.0f64;
        for tri in self.indices.chunks_exact(3) {
            let a = self.positions[tri[0] as usize];
            let b = self.positions[tri[1] as usize];
            let c = self.positions[tri[2] as usize];
            let ab = [b[0] - a[0], b[1] - a[1], b[2] - a[2]];
            let ac = [c[0] - a[0], c[1] - a[1], c[2] - a[2]];
            let cross = [
                ab[1] * ac[2] - ab[2] * ac[1],
                ab[2] * ac[0] - ab[0] * ac[2],
                ab[0] * ac[1] - ab[1] * ac[0],
            ];
            let norm =
                (cross[0] as f64).powi(2) + (cross[1] as f64).powi(2) + (cross[2] as f64).powi(2);
            area += 0.5 * norm.sqrt();
        }
        area
    }
}

/// Normalize a vector, returning a default up-vector for degenerate input.
pub fn normalize(v: [f32; 3]) -> [f32; 3] {
    let len = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
    if len < 1e-12 {
        [0.0, 0.0, 1.0]
    } else {
        [v[0] / len, v[1] / len, v[2] / len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_triangle() -> TriangleMesh {
        let mut m = TriangleMesh::new();
        m.push_triangle(
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
        );
        m
    }

    #[test]
    fn counts_and_bytes() {
        let m = unit_triangle();
        assert_eq!(m.triangle_count(), 1);
        assert_eq!(m.vertex_count(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.nbytes(), 3 * 12 + 3 * 12 + 3 * 4);
        assert!(TriangleMesh::new().is_empty());
    }

    #[test]
    fn append_offsets_indices() {
        let mut a = unit_triangle();
        let b = unit_triangle();
        a.append(&b);
        assert_eq!(a.triangle_count(), 2);
        assert_eq!(a.indices[3..6], [3, 4, 5]);
    }

    #[test]
    fn bounding_box_and_area() {
        let m = unit_triangle();
        let (lo, hi) = m.bounding_box().unwrap();
        assert_eq!(lo, [0.0, 0.0, 0.0]);
        assert_eq!(hi, [1.0, 1.0, 0.0]);
        assert!((m.surface_area() - 0.5).abs() < 1e-9);
        assert!(TriangleMesh::new().bounding_box().is_none());
        assert_eq!(TriangleMesh::new().surface_area(), 0.0);
    }

    #[test]
    fn normalize_handles_degenerate_vectors() {
        let n = normalize([3.0, 0.0, 4.0]);
        assert!((n[0] - 0.6).abs() < 1e-6);
        assert!((n[2] - 0.8).abs() < 1e-6);
        assert_eq!(normalize([0.0, 0.0, 0.0]), [0.0, 0.0, 1.0]);
    }
}
