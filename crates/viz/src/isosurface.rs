//! Block-level isosurface extraction (the pipeline's transformation module).
//!
//! Extraction follows the structure assumed by the paper's cost model
//! (Section 4.4.1): an octree identifies the blocks whose value range
//! straddles the isovalue, extraction is performed block by block (in
//! parallel with rayon, standing in for the MPI-parallel cluster modules),
//! and per-cell statistics over the 15 marching-cubes case classes are
//! collected so the cost model's `P_Case(i)` frequencies and `T_Case(i)`
//! timings can be calibrated.
//!
//! Triangulation uses a tetrahedral decomposition of each cell (six
//! tetrahedra), which produces a crack-free surface without the classic
//! 256-entry lookup table; the per-class triangle counts the cost model
//! needs are measured rather than tabulated, exactly as the paper measures
//! them.

use crate::cell::{case_class, corner_config, is_active, CASE_CLASS_COUNT, CORNER_OFFSETS};
use crate::mesh::{normalize, TriangleMesh};
use rayon::prelude::*;
use ricsa_vizdata::field::ScalarField;
use ricsa_vizdata::octree::{Octree, OctreeBlock};
use serde::{Deserialize, Serialize};

/// Histogram of cell classifications over the 15 case classes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseHistogram {
    /// Number of cells observed in each class.
    pub counts: [u64; CASE_CLASS_COUNT],
    /// Number of triangles emitted by cells of each class.
    pub triangles: [u64; CASE_CLASS_COUNT],
}

impl Default for CaseHistogram {
    fn default() -> Self {
        CaseHistogram {
            counts: [0; CASE_CLASS_COUNT],
            triangles: [0; CASE_CLASS_COUNT],
        }
    }
}

impl CaseHistogram {
    /// Total number of cells observed.
    pub fn total_cells(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The case probabilities `P_Case(i)` of the paper's Eq. 5.
    pub fn probabilities(&self) -> [f64; CASE_CLASS_COUNT] {
        let total = self.total_cells();
        let mut p = [0.0; CASE_CLASS_COUNT];
        if total == 0 {
            return p;
        }
        for (i, &c) in self.counts.iter().enumerate() {
            p[i] = c as f64 / total as f64;
        }
        p
    }

    /// Mean triangles emitted per cell of each class (`n_triangle(i)` in
    /// Eq. 6); zero for classes never observed.
    pub fn triangles_per_cell(&self) -> [f64; CASE_CLASS_COUNT] {
        let mut t = [0.0; CASE_CLASS_COUNT];
        for ((t, &count), &triangles) in t.iter_mut().zip(&self.counts).zip(&self.triangles) {
            if count > 0 {
                *t = triangles as f64 / count as f64;
            }
        }
        t
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &CaseHistogram) {
        for i in 0..CASE_CLASS_COUNT {
            self.counts[i] += other.counts[i];
            self.triangles[i] += other.triangles[i];
        }
    }
}

/// The result of an isosurface extraction.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IsosurfaceResult {
    /// The extracted triangle mesh.
    pub mesh: TriangleMesh,
    /// Per-case-class statistics over all processed cells.
    pub histogram: CaseHistogram,
    /// Number of octree blocks that intersected the isovalue (`n_blocks`).
    pub active_blocks: usize,
    /// Number of octree blocks considered in total.
    pub total_blocks: usize,
}

/// Extract an isosurface from an entire field at `isovalue`, decomposing it
/// into blocks of `block_size` samples per edge.
pub fn extract_isosurface(
    field: &ScalarField,
    isovalue: f32,
    block_size: usize,
) -> IsosurfaceResult {
    let octree = Octree::build(field, block_size);
    extract_from_octree(field, &octree, isovalue, None)
}

/// Extract an isosurface over a precomputed octree, optionally restricted to
/// a subset of blocks (e.g. one of the eight octants selected in the GUI).
pub fn extract_from_octree(
    field: &ScalarField,
    octree: &Octree,
    isovalue: f32,
    subset: Option<&[ricsa_vizdata::octree::BlockId]>,
) -> IsosurfaceResult {
    let selected: Vec<&OctreeBlock> = match subset {
        Some(ids) => octree
            .blocks
            .iter()
            .filter(|b| ids.contains(&b.id))
            .collect(),
        None => octree.blocks.iter().collect(),
    };
    let total_blocks = selected.len();
    let active: Vec<&OctreeBlock> = selected
        .into_iter()
        .filter(|b| b.intersects_isovalue(isovalue))
        .collect();
    let active_blocks = active.len();

    let partials: Vec<(TriangleMesh, CaseHistogram)> = active
        .par_iter()
        .map(|block| extract_block(field, block, isovalue))
        .collect();

    let mut mesh = TriangleMesh::new();
    let mut histogram = CaseHistogram::default();
    for (m, h) in partials {
        mesh.append(&m);
        histogram.merge(&h);
    }
    IsosurfaceResult {
        mesh,
        histogram,
        active_blocks,
        total_blocks,
    }
}

/// Extract the isosurface inside a single block.
pub fn extract_block(
    field: &ScalarField,
    block: &OctreeBlock,
    isovalue: f32,
) -> (TriangleMesh, CaseHistogram) {
    let mut mesh = TriangleMesh::new();
    let mut histogram = CaseHistogram::default();
    let d = field.dims;
    // Cells whose lower corner lies in the block; the +1 sample comes from
    // the neighbouring block (or is clamped at the domain boundary).
    let x_end = (block.max[0]).min(d.nx.saturating_sub(1));
    let y_end = (block.max[1]).min(d.ny.saturating_sub(1));
    let z_end = (block.max[2]).min(d.nz.saturating_sub(1));
    for z in block.min[2]..z_end {
        for y in block.min[1]..y_end {
            for x in block.min[0]..x_end {
                if x + 1 >= d.nx || y + 1 >= d.ny || z + 1 >= d.nz {
                    continue;
                }
                let mut values = [0.0f32; 8];
                for (i, off) in CORNER_OFFSETS.iter().enumerate() {
                    values[i] = field.get(x + off[0], y + off[1], z + off[2]);
                }
                let config = corner_config(&values, isovalue);
                let class = case_class(config);
                histogram.counts[class] += 1;
                if !is_active(config) {
                    continue;
                }
                let before = mesh.triangle_count();
                triangulate_cell(&mut mesh, field, [x, y, z], &values, isovalue);
                let emitted = (mesh.triangle_count() - before) as u64;
                histogram.triangles[class] += emitted;
            }
        }
    }
    (mesh, histogram)
}

/// The six tetrahedra of a cube cell, as corner indices.
const CELL_TETRAHEDRA: [[usize; 4]; 6] = [
    [0, 5, 1, 3],
    [0, 5, 3, 7],
    [0, 5, 7, 4],
    [0, 3, 2, 7],
    [0, 2, 6, 7],
    [0, 4, 7, 6],
];

fn triangulate_cell(
    mesh: &mut TriangleMesh,
    field: &ScalarField,
    cell: [usize; 3],
    values: &[f32; 8],
    isovalue: f32,
) {
    let corner_pos = |i: usize| -> [f32; 3] {
        [
            (cell[0] + CORNER_OFFSETS[i][0]) as f32,
            (cell[1] + CORNER_OFFSETS[i][1]) as f32,
            (cell[2] + CORNER_OFFSETS[i][2]) as f32,
        ]
    };
    for tet in &CELL_TETRAHEDRA {
        triangulate_tetrahedron(
            mesh,
            field,
            tet.map(corner_pos),
            tet.map(|i| values[i]),
            isovalue,
        );
    }
}

fn interpolate_edge(p0: [f32; 3], p1: [f32; 3], v0: f32, v1: f32, isovalue: f32) -> [f32; 3] {
    let denom = v1 - v0;
    let t = if denom.abs() < 1e-12 {
        0.5
    } else {
        ((isovalue - v0) / denom).clamp(0.0, 1.0)
    };
    [
        p0[0] + t * (p1[0] - p0[0]),
        p0[1] + t * (p1[1] - p0[1]),
        p0[2] + t * (p1[2] - p0[2]),
    ]
}

fn gradient_at(field: &ScalarField, p: [f32; 3]) -> [f32; 3] {
    let d = field.dims;
    let clamp = |v: f32, n: usize| (v.round().max(0.0) as usize).min(n.saturating_sub(1));
    let g = field.gradient(clamp(p[0], d.nx), clamp(p[1], d.ny), clamp(p[2], d.nz));
    // Surface normal points against the gradient (from high to low values).
    normalize([-g[0], -g[1], -g[2]])
}

fn triangulate_tetrahedron(
    mesh: &mut TriangleMesh,
    field: &ScalarField,
    pos: [[f32; 3]; 4],
    val: [f32; 4],
    isovalue: f32,
) {
    let inside: Vec<usize> = (0..4).filter(|&i| val[i] >= isovalue).collect();
    let outside: Vec<usize> = (0..4).filter(|&i| val[i] < isovalue).collect();
    let edge = |a: usize, b: usize| interpolate_edge(pos[a], pos[b], val[a], val[b], isovalue);
    match inside.len() {
        0 | 4 => {}
        1 => {
            let a = inside[0];
            let p0 = edge(a, outside[0]);
            let p1 = edge(a, outside[1]);
            let p2 = edge(a, outside[2]);
            let n = gradient_at(field, p0);
            mesh.push_triangle(p0, p1, p2, n);
        }
        3 => {
            let a = outside[0];
            let p0 = edge(a, inside[0]);
            let p1 = edge(a, inside[1]);
            let p2 = edge(a, inside[2]);
            let n = gradient_at(field, p0);
            mesh.push_triangle(p0, p1, p2, n);
        }
        2 => {
            // Quad split into two triangles.
            let (a0, a1) = (inside[0], inside[1]);
            let (b0, b1) = (outside[0], outside[1]);
            let p00 = edge(a0, b0);
            let p01 = edge(a0, b1);
            let p10 = edge(a1, b0);
            let p11 = edge(a1, b1);
            let n = gradient_at(field, p00);
            mesh.push_triangle(p00, p10, p11, n);
            mesh.push_triangle(p00, p11, p01, n);
        }
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ricsa_vizdata::field::Dims;
    use ricsa_vizdata::synth::{SyntheticVolume, VolumeKind};

    fn sphere_field(n: usize) -> ScalarField {
        // Signed distance-ish: value = R - r, so the isosurface at 0 is a
        // sphere of radius R centred in the volume.
        let c = (n as f32 - 1.0) / 2.0;
        let radius = n as f32 / 4.0;
        ScalarField::from_fn(Dims::cube(n), move |x, y, z| {
            let dx = x as f32 - c;
            let dy = y as f32 - c;
            let dz = z as f32 - c;
            radius - (dx * dx + dy * dy + dz * dz).sqrt()
        })
    }

    #[test]
    fn sphere_isosurface_has_expected_area_and_bounds() {
        let n = 32;
        let field = sphere_field(n);
        let result = extract_isosurface(&field, 0.0, 8);
        assert!(!result.mesh.is_empty());
        let radius = n as f64 / 4.0;
        let expected_area = 4.0 * std::f64::consts::PI * radius * radius;
        let area = result.mesh.surface_area();
        assert!(
            (area - expected_area).abs() / expected_area < 0.1,
            "area {area} vs expected {expected_area}"
        );
        // All vertices lie close to the sphere.
        let c = (n as f32 - 1.0) / 2.0;
        for p in &result.mesh.positions {
            let r = ((p[0] - c).powi(2) + (p[1] - c).powi(2) + (p[2] - c).powi(2)).sqrt();
            assert!((r - radius as f32).abs() < 1.0, "vertex at radius {r}");
        }
    }

    #[test]
    fn empty_isovalue_produces_no_geometry_but_counts_cells() {
        let field = sphere_field(16);
        let result = extract_isosurface(&field, 1000.0, 8);
        assert!(result.mesh.is_empty());
        assert_eq!(result.active_blocks, 0);
        assert!(result.total_blocks > 0);
        assert_eq!(result.histogram.total_cells(), 0);
    }

    #[test]
    fn histogram_probabilities_sum_to_one_and_trivial_class_dominates() {
        let field = sphere_field(24);
        let result = extract_isosurface(&field, 0.0, 8);
        let probs = result.histogram.probabilities();
        let sum: f64 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // Most cells in an active block still do not straddle the surface.
        assert!(probs[0] > 0.3, "trivial-class probability {}", probs[0]);
        // Active classes emit triangles, the trivial class does not.
        let tpc = result.histogram.triangles_per_cell();
        assert_eq!(tpc[0], 0.0);
        assert!(tpc.iter().skip(1).any(|&t| t > 0.0));
    }

    #[test]
    fn block_culling_reduces_processed_cells() {
        let field = sphere_field(32);
        let octree = Octree::build(&field, 8);
        let result = extract_from_octree(&field, &octree, 0.0, None);
        assert!(result.active_blocks < result.total_blocks);
        // Cells are only counted in active blocks; each block owns at most
        // block_size^3 cells (those whose lower corner lies inside it).
        let max_cells = result.active_blocks * octree.block_size.pow(3);
        assert!(result.histogram.total_cells() as usize <= max_cells);
    }

    #[test]
    fn octant_subset_extracts_fewer_triangles() {
        let field = sphere_field(24);
        let octree = Octree::build(&field, 8);
        let full = extract_from_octree(&field, &octree, 0.0, None);
        let subset_ids: Vec<_> = octree.octant_blocks(0).iter().map(|b| b.id).collect();
        let subset = extract_from_octree(&field, &octree, 0.0, Some(&subset_ids));
        assert!(subset.mesh.triangle_count() < full.mesh.triangle_count());
        assert!(subset.mesh.triangle_count() > 0);
    }

    #[test]
    fn block_size_does_not_change_the_surface_much() {
        // The same isosurface extracted with different block sizes should
        // have nearly identical area (block boundaries add no cracks).
        let field = sphere_field(24);
        let a = extract_isosurface(&field, 0.0, 4).mesh.surface_area();
        let b = extract_isosurface(&field, 0.0, 12).mesh.surface_area();
        assert!((a - b).abs() / a < 0.02, "areas {a} vs {b}");
    }

    #[test]
    fn jet_volume_extraction_is_nonempty_and_finite() {
        let field = SyntheticVolume::new(VolumeKind::Jet, Dims::cube(24), 5).generate();
        let result = extract_isosurface(&field, 0.5, 8);
        assert!(result.mesh.triangle_count() > 0);
        assert!(result
            .mesh
            .positions
            .iter()
            .all(|p| p.iter().all(|v| v.is_finite())));
        assert!(result
            .mesh
            .normals
            .iter()
            .all(|n| n.iter().all(|v| v.is_finite())));
    }
}
