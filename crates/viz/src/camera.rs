//! Orthographic camera / view parameters.
//!
//! The RICSA client lets the user pick a zoom factor and rotation angles and
//! rotate the image with the mouse; those view parameters travel over the
//! control channel and are consumed by both the ray caster (which assumes
//! orthographic projection, as the paper's cost model does) and the
//! rasterizer.

use serde::{Deserialize, Serialize};

/// An orthographic camera defined by two rotation angles, a zoom factor and
/// the viewport size in pixels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Camera {
    /// Rotation about the vertical (y) axis, radians.
    pub yaw: f32,
    /// Rotation about the horizontal (x) axis, radians.
    pub pitch: f32,
    /// Zoom factor; 1.0 fits the dataset's largest extent into the viewport.
    pub zoom: f32,
    /// Viewport width, pixels.
    pub width: usize,
    /// Viewport height, pixels.
    pub height: usize,
}

impl Default for Camera {
    fn default() -> Self {
        Camera {
            yaw: 0.6,
            pitch: 0.4,
            zoom: 1.0,
            width: 512,
            height: 512,
        }
    }
}

impl Camera {
    /// A camera with the given viewport and default orientation.
    pub fn with_viewport(width: usize, height: usize) -> Self {
        Camera {
            width,
            height,
            ..Camera::default()
        }
    }

    /// Rotate the camera by the given deltas (mouse interaction).
    pub fn rotate(&mut self, d_yaw: f32, d_pitch: f32) {
        self.yaw += d_yaw;
        self.pitch = (self.pitch + d_pitch).clamp(-1.5, 1.5);
    }

    /// The orthonormal view basis `(right, up, forward)` in dataset space.
    pub fn basis(&self) -> ([f32; 3], [f32; 3], [f32; 3]) {
        let (sy, cy) = self.yaw.sin_cos();
        let (sp, cp) = self.pitch.sin_cos();
        let forward = [cy * cp, sp, sy * cp];
        let right = [-sy, 0.0, cy];
        let up = [
            right[1] * forward[2] - right[2] * forward[1],
            right[2] * forward[0] - right[0] * forward[2],
            right[0] * forward[1] - right[1] * forward[0],
        ];
        (right, up, forward)
    }

    /// Project a dataset-space point to pixel coordinates plus view depth,
    /// given the dataset center and its largest half-extent.
    pub fn project(&self, p: [f32; 3], center: [f32; 3], half_extent: f32) -> (f32, f32, f32) {
        let (right, up, forward) = self.basis();
        let rel = [p[0] - center[0], p[1] - center[1], p[2] - center[2]];
        let dot = |a: [f32; 3], b: [f32; 3]| a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
        let scale = self.zoom * 0.5 * self.width.min(self.height) as f32 / half_extent.max(1e-6);
        let x = self.width as f32 / 2.0 + dot(rel, right) * scale;
        let y = self.height as f32 / 2.0 - dot(rel, up) * scale;
        let depth = dot(rel, forward);
        (x, y, depth)
    }

    /// The dataset-space ray origin for a pixel (orthographic: one parallel
    /// ray per pixel), returned as `(origin, direction)`.
    pub fn pixel_ray(
        &self,
        px: usize,
        py: usize,
        center: [f32; 3],
        half_extent: f32,
    ) -> ([f32; 3], [f32; 3]) {
        let (right, up, forward) = self.basis();
        let scale = half_extent.max(1e-6) / (self.zoom * 0.5 * self.width.min(self.height) as f32);
        let sx = (px as f32 + 0.5 - self.width as f32 / 2.0) * scale;
        let sy = -(py as f32 + 0.5 - self.height as f32 / 2.0) * scale;
        // Start well outside the volume and march forward.
        let start_dist = 2.0 * half_extent.max(1.0);
        let origin = [
            center[0] + right[0] * sx + up[0] * sy - forward[0] * start_dist,
            center[1] + right[1] * sx + up[1] * sy - forward[1] * start_dist,
            center[2] + right[2] * sx + up[2] * sy - forward[2] * start_dist,
        ];
        (origin, forward)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_is_orthonormal() {
        let cam = Camera::default();
        let (r, u, f) = cam.basis();
        let dot = |a: [f32; 3], b: [f32; 3]| a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
        let len = |a: [f32; 3]| dot(a, a).sqrt();
        assert!((len(r) - 1.0).abs() < 1e-5);
        assert!((len(u) - 1.0).abs() < 1e-5);
        assert!((len(f) - 1.0).abs() < 1e-5);
        assert!(dot(r, u).abs() < 1e-5);
        assert!(dot(r, f).abs() < 1e-5);
        assert!(dot(u, f).abs() < 1e-5);
    }

    #[test]
    fn center_projects_to_viewport_center() {
        let cam = Camera::with_viewport(200, 100);
        let (x, y, depth) = cam.project([5.0, 5.0, 5.0], [5.0, 5.0, 5.0], 10.0);
        assert!((x - 100.0).abs() < 1e-4);
        assert!((y - 50.0).abs() < 1e-4);
        assert!(depth.abs() < 1e-4);
    }

    #[test]
    fn zoom_scales_projection() {
        let mut cam = Camera::with_viewport(100, 100);
        cam.yaw = 0.0;
        cam.pitch = 0.0;
        let p = [0.0, 1.0, 1.0];
        let (x1, _, _) = cam.project(p, [0.0; 3], 2.0);
        cam.zoom = 2.0;
        let (x2, _, _) = cam.project(p, [0.0; 3], 2.0);
        let center = 50.0;
        assert!((x2 - center).abs() > (x1 - center).abs());
    }

    #[test]
    fn rotation_clamps_pitch() {
        let mut cam = Camera::default();
        cam.rotate(0.1, 100.0);
        assert!(cam.pitch <= 1.5);
        cam.rotate(0.0, -100.0);
        assert!(cam.pitch >= -1.5);
    }

    #[test]
    fn pixel_rays_start_outside_and_point_forward() {
        let cam = Camera::with_viewport(64, 64);
        let center = [10.0, 10.0, 10.0];
        let half = 8.0;
        let (origin, dir) = cam.pixel_ray(32, 32, center, half);
        let rel = [
            origin[0] - center[0],
            origin[1] - center[1],
            origin[2] - center[2],
        ];
        let dist = (rel[0] * rel[0] + rel[1] * rel[1] + rel[2] * rel[2]).sqrt();
        assert!(dist >= 2.0 * half - 1e-3);
        // The ray direction points back toward the center.
        let toward = rel[0] * dir[0] + rel[1] * dir[1] + rel[2] * dir[2];
        assert!(toward < 0.0);
    }

    #[test]
    fn center_pixel_ray_passes_near_the_center() {
        let cam = Camera::with_viewport(65, 65);
        let center = [0.0, 0.0, 0.0];
        let (origin, dir) = cam.pixel_ray(32, 32, center, 5.0);
        // Distance from the center to the ray line should be small.
        let t = -(origin[0] * dir[0] + origin[1] * dir[1] + origin[2] * dir[2]);
        let closest = [
            origin[0] + t * dir[0],
            origin[1] + t * dir[1],
            origin[2] + t * dir[2],
        ];
        let d = (closest[0].powi(2) + closest[1].powi(2) + closest[2].powi(2)).sqrt();
        assert!(d < 0.2, "closest approach {d}");
    }
}
