//! Time-varying network scenarios: scheduled link mutations.
//!
//! The paper measures the WAN once and maps the pipeline once; real
//! wide-area paths drift.  This module turns every static topology into a
//! family of *dynamic* ones: a [`DynamicScenario`] is a seeded,
//! deterministic schedule of [`LinkEvent`]s — bandwidth ramps,
//! cross-traffic bursts, and deep degradation/recovery episodes — that the
//! simulator applies to link parameters at their scheduled virtual
//! timestamps (see [`crate::sim::Simulator::apply_scenario`]).
//!
//! Determinism contract: the same `(parameters, link count, seed)` always
//! produce a byte-identical event schedule (the tests compare serialized
//! JSON, not merely `PartialEq`), so adaptive-control experiments are
//! exactly reproducible.
//!
//! Changes are expressed *relative to the link's original specification*
//! ([`LinkChange::ScaleBandwidth`] multiplies the original bandwidth, and
//! [`LinkChange::Restore`] reverts to it), so schedules compose without
//! accumulating drift: applying `ScaleBandwidth { factor: 0.1 }` twice
//! still leaves the link at 10 % of its original capacity.  The flip side
//! of never stacking: a `Restore` reverts the *whole* original spec, so a
//! recovery event on a link cancels any earlier ramp on that link too —
//! each link's state is always "original spec, modified by its most
//! recent event".

use crate::crosstraffic::CrossTraffic;
use crate::link::LinkId;
use crate::rng::SimRng;
use crate::time::SimTime;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// A mutation applied to one directed link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LinkChange {
    /// Set the link's raw bandwidth to `factor` × its *original* value
    /// (values < 1 degrade, values > 1 upgrade; clamped to stay positive).
    ScaleBandwidth {
        /// Multiplier applied to the original bandwidth.
        factor: f64,
    },
    /// Replace the link's cross-traffic process (e.g. a burst of competing
    /// traffic arriving, or ceasing).
    SetCrossTraffic {
        /// The new cross-traffic model.
        model: CrossTraffic,
    },
    /// Restore the link's original specification (bandwidth and cross
    /// traffic) — the recovery half of a degradation/recovery episode.
    Restore,
}

/// One scheduled link mutation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkEvent {
    /// Virtual time at which the change takes effect.
    pub at: SimTime,
    /// The directed link affected.
    pub link: LinkId,
    /// What happens to it.
    pub change: LinkChange,
}

/// A deterministic schedule of link mutations over a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicScenario {
    /// Human-readable description (kind mix, horizon, seed).
    pub label: String,
    /// The seed the schedule was generated from.
    pub seed: u64,
    /// Events in non-decreasing time order.
    pub events: Vec<LinkEvent>,
}

impl DynamicScenario {
    /// An empty (static) scenario.
    pub fn empty() -> Self {
        DynamicScenario {
            label: "static".into(),
            seed: 0,
            events: Vec::new(),
        }
    }

    /// The time of the first scheduled event, if any.
    pub fn first_event_at(&self) -> Option<SimTime> {
        self.events.first().map(|e| e.at)
    }
}

/// Parameters of the seeded schedule generator ([`generate_schedule`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleParams {
    /// Virtual-time horizon covered by the schedule, seconds.
    pub horizon: f64,
    /// Mean gap between consecutive events, seconds (exponential).
    pub mean_gap: f64,
    /// Relative weight of *ramp* events: a bandwidth rescale that lasts
    /// until the link's next event.  Note that [`LinkChange::Restore`]
    /// (the recovery half of a later burst/degradation episode on the
    /// same link) reverts to the *original* specification, cancelling an
    /// earlier ramp — all changes are expressed relative to the original
    /// spec, never stacked.
    pub ramp_weight: f64,
    /// Relative weight of *burst* events: a cross-traffic burst followed by
    /// a recovery after an exponential outage time.
    pub burst_weight: f64,
    /// Relative weight of *degradation* events: a deep bandwidth drop
    /// followed by a recovery after an exponential outage time.
    pub degrade_weight: f64,
    /// Bandwidth scale range sampled for ramps (e.g. `(0.4, 0.9)`).
    pub ramp_range: (f64, f64),
    /// Bandwidth scale range sampled for degradations (e.g. `(0.05, 0.3)`).
    pub degrade_range: (f64, f64),
    /// Cross-traffic load range sampled for bursts, in `[0, 0.95)`.
    pub burst_load: (f64, f64),
    /// Mean outage duration before a burst/degradation recovers, seconds.
    pub mean_outage: f64,
}

impl Default for ScheduleParams {
    fn default() -> Self {
        ScheduleParams {
            horizon: 120.0,
            mean_gap: 15.0,
            ramp_weight: 1.0,
            burst_weight: 1.0,
            degrade_weight: 1.0,
            ramp_range: (0.4, 0.9),
            degrade_range: (0.05, 0.3),
            burst_load: (0.5, 0.9),
            mean_outage: 20.0,
        }
    }
}

/// Generate a deterministic event schedule for a topology with
/// `link_count` directed links.  The same `(params, link_count, seed)`
/// always produce an identical schedule; recovery events are emitted for
/// every burst/degradation (possibly beyond the horizon, so an episode
/// started inside the horizon always ends).
pub fn generate_schedule(link_count: usize, params: &ScheduleParams, seed: u64) -> DynamicScenario {
    let mut rng = SimRng::new(seed ^ 0xD1_9A_0C_5E);
    let mut events: Vec<LinkEvent> = Vec::new();
    if link_count > 0 {
        let total_weight =
            (params.ramp_weight + params.burst_weight + params.degrade_weight).max(1e-12);
        let mut t = 0.0;
        loop {
            t += rng.exponential(params.mean_gap.max(1e-6)).max(1e-3);
            if t >= params.horizon {
                break;
            }
            let link = LinkId(rng.index(link_count));
            let kind = rng.uniform() * total_weight;
            if kind < params.ramp_weight {
                let factor = rng.uniform_range(params.ramp_range.0, params.ramp_range.1);
                events.push(LinkEvent {
                    at: SimTime::from_secs(t),
                    link,
                    change: LinkChange::ScaleBandwidth { factor },
                });
            } else {
                let outage = rng.exponential(params.mean_outage.max(1e-6)).max(0.5);
                let change = if kind < params.ramp_weight + params.burst_weight {
                    LinkChange::SetCrossTraffic {
                        model: CrossTraffic::Constant {
                            load: rng.uniform_range(params.burst_load.0, params.burst_load.1),
                        },
                    }
                } else {
                    LinkChange::ScaleBandwidth {
                        factor: rng.uniform_range(params.degrade_range.0, params.degrade_range.1),
                    }
                };
                events.push(LinkEvent {
                    at: SimTime::from_secs(t),
                    link,
                    change,
                });
                events.push(LinkEvent {
                    at: SimTime::from_secs(t + outage),
                    link,
                    change: LinkChange::Restore,
                });
            }
        }
    }
    events.sort_by(|a, b| {
        a.at.as_secs()
            .partial_cmp(&b.at.as_secs())
            .expect("event times are finite")
            .then(a.link.0.cmp(&b.link.0))
    });
    DynamicScenario {
        label: format!(
            "dynamic[links={link_count},horizon={:.0}s,seed={seed}]",
            params.horizon
        ),
        seed,
        events,
    }
}

/// Derive the seed of family member `index` from one base seed.  The mix
/// (splitmix-style multiply + xor) decorrelates adjacent members while
/// keeping the whole family reproducible from the single base seed a sweep
/// record names.
pub fn family_member_seed(base_seed: u64, index: u64) -> u64 {
    let mixed = base_seed
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    mixed ^ (mixed >> 31)
}

/// Generate a *family* of `count` dynamic scenarios for a topology with
/// `link_count` directed links, all keyed off one `base_seed`: member `i`
/// uses [`family_member_seed`]`(base_seed, i)`, so a sweep can report a
/// single seed per WAN and still enumerate many independent schedules.
/// Each member is individually byte-deterministic (it is a plain
/// [`generate_schedule`] call) and the family as a whole reproduces from
/// `(params, link_count, base_seed, count)`.
pub fn generate_schedule_family(
    link_count: usize,
    params: &ScheduleParams,
    base_seed: u64,
    count: usize,
) -> Vec<DynamicScenario> {
    (0..count as u64)
        .map(|i| generate_schedule(link_count, params, family_member_seed(base_seed, i)))
        .collect()
}

/// Apply one event to a *topology* (rather than a running simulator):
/// `base` supplies the original link specifications that relative changes
/// refer to.  This is how an oracle controller maintains the true current
/// network view alongside the simulation.
pub fn apply_event_to_topology(topo: &mut Topology, base: &Topology, event: &LinkEvent) {
    let Some(original) = base.edge(event.link).map(|e| e.spec.clone()) else {
        return;
    };
    let Some(spec) = topo.edge_spec_mut(event.link) else {
        return;
    };
    match &event.change {
        LinkChange::ScaleBandwidth { factor } => {
            spec.bandwidth_bps = (original.bandwidth_bps * factor.max(0.0)).max(1.0);
        }
        LinkChange::SetCrossTraffic { model } => {
            spec.cross_traffic = model.clone();
        }
        LinkChange::Restore => {
            *spec = original;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_yields_byte_identical_schedules() {
        let params = ScheduleParams::default();
        let a = generate_schedule(10, &params, 42);
        let b = generate_schedule(10, &params, 42);
        let ja = serde_json::to_string(&a).unwrap();
        let jb = serde_json::to_string(&b).unwrap();
        assert_eq!(ja, jb, "same seed must reproduce the schedule bytes");
        let c = generate_schedule(10, &params, 43);
        assert_ne!(
            ja,
            serde_json::to_string(&c).unwrap(),
            "different seeds must differ"
        );
        assert!(!a.events.is_empty(), "default params produce events");
    }

    #[test]
    fn schedules_are_time_ordered_and_episodes_always_recover() {
        let scenario = generate_schedule(6, &ScheduleParams::default(), 7);
        for pair in scenario.events.windows(2) {
            assert!(pair[0].at.as_secs() <= pair[1].at.as_secs());
        }
        // Every burst/degradation episode has a matching Restore later on
        // the same link.
        for (i, e) in scenario.events.iter().enumerate() {
            let episodic = matches!(e.change, LinkChange::SetCrossTraffic { .. })
                || (matches!(e.change, LinkChange::ScaleBandwidth { factor } if factor < 0.4)
                    && scenario.events[..i]
                        .iter()
                        .all(|p| p.link != e.link || !matches!(p.change, LinkChange::Restore)));
            if episodic {
                assert!(
                    scenario.events[i + 1..]
                        .iter()
                        .any(|r| r.link == e.link && matches!(r.change, LinkChange::Restore)),
                    "episode on {} never recovers",
                    e.link
                );
            }
        }
    }

    #[test]
    fn schedule_families_reproduce_and_members_decorrelate() {
        let params = ScheduleParams::default();
        let a = generate_schedule_family(10, &params, 9, 4);
        let b = generate_schedule_family(10, &params, 9, 4);
        assert_eq!(a.len(), 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                serde_json::to_string(x).unwrap(),
                serde_json::to_string(y).unwrap(),
                "family must be byte-deterministic per base seed"
            );
        }
        // Members are distinct schedules, and each matches the plain
        // generator called with its derived seed.
        assert_ne!(a[0], a[1]);
        assert_ne!(a[1], a[2]);
        for (i, member) in a.iter().enumerate() {
            let derived = family_member_seed(9, i as u64);
            assert_eq!(member.seed, derived);
            assert_eq!(member, &generate_schedule(10, &params, derived));
        }
        // A different base seed yields a different family.
        let c = generate_schedule_family(10, &params, 10, 4);
        assert_ne!(a[0], c[0]);
    }

    #[test]
    fn empty_link_set_produces_no_events() {
        let scenario = generate_schedule(0, &ScheduleParams::default(), 1);
        assert!(scenario.events.is_empty());
        assert_eq!(DynamicScenario::empty().first_event_at(), None);
    }

    #[test]
    fn topology_view_tracks_events_relative_to_base() {
        use crate::link::LinkSpec;
        use crate::node::NodeSpec;
        let mut base = Topology::new();
        let a = base.add_node(NodeSpec::workstation("a", 1.0));
        let b = base.add_node(NodeSpec::workstation("b", 1.0));
        let (ab, _) = base.connect(a, b, LinkSpec::new(1e6, 0.01));
        let mut live = base.clone();
        let degrade = LinkEvent {
            at: SimTime::from_secs(1.0),
            link: ab,
            change: LinkChange::ScaleBandwidth { factor: 0.1 },
        };
        apply_event_to_topology(&mut live, &base, &degrade);
        assert!((live.edge(ab).unwrap().spec.bandwidth_bps - 1e5).abs() < 1e-6);
        // Relative semantics: applying the same scale twice is idempotent.
        apply_event_to_topology(&mut live, &base, &degrade);
        assert!((live.edge(ab).unwrap().spec.bandwidth_bps - 1e5).abs() < 1e-6);
        let restore = LinkEvent {
            at: SimTime::from_secs(2.0),
            link: ab,
            change: LinkChange::Restore,
        };
        apply_event_to_topology(&mut live, &base, &restore);
        assert_eq!(live.edge(ab).unwrap().spec, base.edge(ab).unwrap().spec);
        // Unknown links are ignored.
        apply_event_to_topology(
            &mut live,
            &base,
            &LinkEvent {
                at: SimTime::ZERO,
                link: LinkId(99),
                change: LinkChange::Restore,
            },
        );
    }
}
