//! Topology presets, including the paper's Fig. 8 deployment.
//!
//! The paper deploys RICSA on six Internet hosts: a client/front-end host at
//! ORNL, the central-management node at LSU, data-source hosts at OSU and
//! GaTech, and cluster-based computing-service nodes at UT and NCState.  The
//! actual link bandwidths and delays are not tabulated in the paper, so the
//! preset uses representative 2008-era Internet2/ESnet figures chosen such
//! that the qualitative structure matches the published result:
//!
//! * GaTech→UT and UT→ORNL are the best-provisioned path (this is the loop
//!   the paper's optimizer picks),
//! * OSU's uplinks are slower than GaTech's,
//! * NCState's cluster is somewhat slower than UT's and sits behind a
//!   lower-bandwidth link,
//! * the direct DS→ORNL paths used by the PC–PC loops are the slowest,
//!   because the client host is an ordinary desktop on a shared campus link.
//!
//! The preset is parameterized by [`Fig8Params`] so that experiments can
//! perturb bandwidths/loss and study how the optimal mapping shifts.

use crate::crosstraffic::CrossTraffic;
use crate::link::LinkSpec;
use crate::loss::LossModel;
use crate::node::{NodeId, NodeSpec};
use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// The six sites of the paper's experimental deployment (Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Fig8Site {
    /// Oak Ridge National Laboratory: Ajax client + front end.
    Ornl,
    /// Louisiana State University: central management node.
    Lsu,
    /// Ohio State University: data source (PC host).
    Osu,
    /// Georgia Tech: data source (PC host).
    GaTech,
    /// University of Tennessee: cluster computing service.
    UtCluster,
    /// North Carolina State University: cluster computing service.
    NcStateCluster,
}

impl Fig8Site {
    /// All six sites in a fixed order.
    pub const ALL: [Fig8Site; 6] = [
        Fig8Site::Ornl,
        Fig8Site::Lsu,
        Fig8Site::Osu,
        Fig8Site::GaTech,
        Fig8Site::UtCluster,
        Fig8Site::NcStateCluster,
    ];

    /// Canonical display name used in node specs and experiment reports.
    pub fn name(self) -> &'static str {
        match self {
            Fig8Site::Ornl => "ORNL",
            Fig8Site::Lsu => "LSU",
            Fig8Site::Osu => "OSU",
            Fig8Site::GaTech => "GaTech",
            Fig8Site::UtCluster => "UT",
            Fig8Site::NcStateCluster => "NCState",
        }
    }
}

/// Tunable parameters of the Fig. 8 preset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Params {
    /// Bandwidth (Mbit/s) of the well-provisioned research-network links
    /// (GaTech↔UT, UT↔ORNL).
    pub fast_link_mbps: f64,
    /// Bandwidth (Mbit/s) of mid-tier links (GaTech↔NCState, OSU↔clusters,
    /// cluster↔ORNL for NCState).
    pub mid_link_mbps: f64,
    /// Bandwidth (Mbit/s) of the slow campus links (DS→ORNL direct paths and
    /// the LSU control links).
    pub slow_link_mbps: f64,
    /// One-way propagation delay between nearby sites, seconds.
    pub near_delay: f64,
    /// One-way propagation delay between distant sites, seconds.
    pub far_delay: f64,
    /// Random loss probability applied to every wide-area link.
    pub loss: f64,
    /// Mean background load on wide-area links (0 disables cross traffic).
    pub cross_traffic_load: f64,
    /// Normalized compute power of a PC-class host.
    pub pc_power: f64,
    /// Normalized compute power of the UT cluster.
    pub ut_power: f64,
    /// Normalized compute power of the NCState cluster.
    pub ncstate_power: f64,
}

impl Default for Fig8Params {
    fn default() -> Self {
        Fig8Params {
            fast_link_mbps: 400.0,
            mid_link_mbps: 120.0,
            slow_link_mbps: 45.0,
            near_delay: 0.008,
            far_delay: 0.022,
            loss: 0.0005,
            cross_traffic_load: 0.15,
            pc_power: 1.0,
            ut_power: 7.0,
            ncstate_power: 4.0,
        }
    }
}

/// The Fig. 8 topology together with the site → node-id mapping.
#[derive(Debug, Clone)]
pub struct Fig8Topology {
    /// The constructed overlay topology.
    pub topology: Topology,
    sites: [(Fig8Site, NodeId); 6],
}

impl Fig8Topology {
    /// Node id of a site.
    pub fn node(&self, site: Fig8Site) -> NodeId {
        self.sites
            .iter()
            .find(|(s, _)| *s == site)
            .map(|(_, id)| *id)
            .expect("all sites are present by construction")
    }

    /// All `(site, node)` pairs.
    pub fn sites(&self) -> &[(Fig8Site, NodeId); 6] {
        &self.sites
    }
}

/// Build the Fig. 8 deployment with default parameters.
pub fn fig8_topology() -> Fig8Topology {
    fig8_topology_with(Fig8Params::default())
}

/// Build the Fig. 8 deployment with explicit parameters.
pub fn fig8_topology_with(p: Fig8Params) -> Fig8Topology {
    let mut t = Topology::new();
    let ornl = t.add_node(NodeSpec::workstation(Fig8Site::Ornl.name(), p.pc_power));
    let lsu = t.add_node(NodeSpec::workstation(Fig8Site::Lsu.name(), p.pc_power));
    // The paper performs isosurface extraction on the OSU/GaTech hosts in the
    // PC-PC experiments because "neither the GaTech host nor the OSU host is
    // equipped with a graphics card".
    let osu = t.add_node(NodeSpec::headless(Fig8Site::Osu.name(), p.pc_power));
    let gatech = t.add_node(NodeSpec::headless(Fig8Site::GaTech.name(), p.pc_power));
    let ut = t.add_node(NodeSpec::cluster(Fig8Site::UtCluster.name(), p.ut_power, 8));
    let ncstate = t.add_node(NodeSpec::cluster(
        Fig8Site::NcStateCluster.name(),
        p.ncstate_power,
        8,
    ));

    let wan = |mbps: f64, delay: f64| -> LinkSpec {
        LinkSpec::from_mbps(mbps, delay)
            .with_loss(LossModel::Bernoulli { p: p.loss })
            .with_cross_traffic(if p.cross_traffic_load > 0.0 {
                CrossTraffic::OnOff {
                    low_load: (p.cross_traffic_load * 0.5).min(0.9),
                    high_load: (p.cross_traffic_load * 1.5).min(0.9),
                    mean_low_duration: 2.0,
                    mean_high_duration: 1.0,
                }
            } else {
                CrossTraffic::None
            })
            .with_jitter(0.0015)
            .with_queue_delay(2.0)
    };

    // Control path: ORNL -> LSU -> data sources (Fig. 8 dashed lines).
    t.connect(ornl, lsu, wan(p.slow_link_mbps, p.far_delay));
    t.connect(lsu, gatech, wan(p.slow_link_mbps, p.far_delay));
    t.connect(lsu, osu, wan(p.slow_link_mbps, p.far_delay));

    // Data paths from the data sources to the computing services.
    t.connect(gatech, ut, wan(p.fast_link_mbps, p.near_delay));
    t.connect(gatech, ncstate, wan(p.mid_link_mbps, p.near_delay));
    t.connect(osu, ut, wan(p.mid_link_mbps, p.far_delay));
    t.connect(osu, ncstate, wan(p.mid_link_mbps, p.near_delay));

    // Computing services back to the client at ORNL.
    t.connect(ut, ornl, wan(p.fast_link_mbps, p.near_delay));
    t.connect(ncstate, ornl, wan(p.mid_link_mbps, p.far_delay));

    // Direct DS -> client links used by the PC-PC (client/server) loops.
    t.connect(gatech, ornl, wan(p.slow_link_mbps, p.near_delay));
    t.connect(osu, ornl, wan(p.slow_link_mbps, p.far_delay));

    let sites = [
        (Fig8Site::Ornl, ornl),
        (Fig8Site::Lsu, lsu),
        (Fig8Site::Osu, osu),
        (Fig8Site::GaTech, gatech),
        (Fig8Site::UtCluster, ut),
        (Fig8Site::NcStateCluster, ncstate),
    ];
    Fig8Topology { topology: t, sites }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::RoutingTable;

    #[test]
    fn preset_builds_a_valid_topology() {
        let f = fig8_topology();
        assert_eq!(f.topology.node_count(), 6);
        assert!(f.topology.validate().is_ok());
        // 11 bidirectional connections -> 22 directed edges.
        assert_eq!(f.topology.edge_count(), 22);
    }

    #[test]
    fn site_lookup_and_names() {
        let f = fig8_topology();
        for site in Fig8Site::ALL {
            let id = f.node(site);
            assert_eq!(f.topology.node(id).unwrap().name, site.name());
        }
        assert_eq!(f.sites().len(), 6);
    }

    #[test]
    fn clusters_are_clusters_and_ds_hosts_are_headless() {
        let f = fig8_topology();
        let ut = f.topology.node(f.node(Fig8Site::UtCluster)).unwrap();
        assert!(ut.capabilities.is_cluster);
        assert!(ut.compute_power > 1.0);
        let gatech = f.topology.node(f.node(Fig8Site::GaTech)).unwrap();
        assert!(!gatech.capabilities.has_graphics);
        let ornl = f.topology.node(f.node(Fig8Site::Ornl)).unwrap();
        assert!(ornl.capabilities.has_graphics);
    }

    #[test]
    fn all_sites_are_mutually_reachable() {
        let f = fig8_topology();
        let rt = RoutingTable::build(&f.topology);
        for a in Fig8Site::ALL {
            for b in Fig8Site::ALL {
                assert!(
                    rt.reachable(f.node(a), f.node(b)),
                    "{} cannot reach {}",
                    a.name(),
                    b.name()
                );
            }
        }
    }

    #[test]
    fn optimal_data_path_is_better_provisioned_than_pc_pc_path() {
        // The GaTech->UT->ORNL path must offer more bandwidth than the direct
        // GaTech->ORNL link, otherwise the preset cannot reproduce Fig. 9.
        let f = fig8_topology();
        let t = &f.topology;
        let gatech = f.node(Fig8Site::GaTech);
        let ut = f.node(Fig8Site::UtCluster);
        let ornl = f.node(Fig8Site::Ornl);
        let fast1 = t.edge_between(gatech, ut).unwrap().spec.bandwidth_bps;
        let fast2 = t.edge_between(ut, ornl).unwrap().spec.bandwidth_bps;
        let slow = t.edge_between(gatech, ornl).unwrap().spec.bandwidth_bps;
        assert!(fast1 > 2.0 * slow);
        assert!(fast2 > 2.0 * slow);
    }

    #[test]
    fn parameter_overrides_are_respected() {
        let params = Fig8Params {
            loss: 0.0,
            cross_traffic_load: 0.0,
            ut_power: 16.0,
            ..Fig8Params::default()
        };
        let f = fig8_topology_with(params);
        let ut = f.topology.node(f.node(Fig8Site::UtCluster)).unwrap();
        assert_eq!(ut.compute_power, 16.0);
        for e in f.topology.edges() {
            assert_eq!(e.spec.loss, LossModel::Bernoulli { p: 0.0 });
            assert_eq!(e.spec.cross_traffic, CrossTraffic::None);
        }
    }
}
