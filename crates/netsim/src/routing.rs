//! Static routing over the overlay graph.
//!
//! Datagrams addressed to a non-adjacent node are forwarded hop by hop along
//! a shortest path.  Paths are computed once from the static topology with
//! Dijkstra's algorithm using the *ideal per-datagram latency* of each link
//! (minimum delay plus the serialization time of an MTU-sized datagram at the
//! mean effective bandwidth) as the edge weight, which mirrors how overlay
//! transport daemons pick virtual circuits in the paper's deployment.

use crate::link::LinkId;
use crate::node::NodeId;
use crate::packet::DEFAULT_MTU;
use crate::topology::Topology;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Precomputed next-hop table: `next_hop[src][dst]` is the link to take.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    next_hop: Vec<Vec<Option<LinkId>>>,
    distance: Vec<Vec<f64>>,
}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance (reverse order), tie-broken by node id for
        // determinism.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl RoutingTable {
    /// Build the all-pairs next-hop table for a topology.
    pub fn build(topo: &Topology) -> Self {
        let n = topo.node_count();
        let mut next_hop = vec![vec![None; n]; n];
        let mut distance = vec![vec![f64::INFINITY; n]; n];

        for src in 0..n {
            // Dijkstra from src.
            let mut dist = vec![f64::INFINITY; n];
            let mut first_link: Vec<Option<LinkId>> = vec![None; n];
            let mut visited = vec![false; n];
            let mut heap = BinaryHeap::new();
            dist[src] = 0.0;
            heap.push(HeapEntry {
                dist: 0.0,
                node: src,
            });
            while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
                if visited[u] {
                    continue;
                }
                visited[u] = true;
                for &lid in topo.outgoing(NodeId(u)) {
                    let edge = match topo.edge(lid) {
                        Some(e) => e,
                        None => continue,
                    };
                    let v = edge.to.0;
                    let weight = edge.spec.min_delay
                        + DEFAULT_MTU as f64 / edge.spec.mean_effective_bandwidth().max(1.0);
                    let nd = d + weight;
                    if nd < dist[v] {
                        dist[v] = nd;
                        first_link[v] = if u == src { Some(lid) } else { first_link[u] };
                        heap.push(HeapEntry { dist: nd, node: v });
                    }
                }
            }
            next_hop[src] = first_link;
            distance[src] = dist;
        }

        RoutingTable { next_hop, distance }
    }

    /// The link a datagram at `at` should take to eventually reach `dst`.
    pub fn next_hop(&self, at: NodeId, dst: NodeId) -> Option<LinkId> {
        if at == dst {
            return None;
        }
        self.next_hop.get(at.0)?.get(dst.0).copied().flatten()
    }

    /// Whether `dst` is reachable from `src`.
    pub fn reachable(&self, src: NodeId, dst: NodeId) -> bool {
        if src == dst {
            return true;
        }
        self.next_hop(src, dst).is_some()
    }

    /// The shortest-path latency estimate (seconds) used as routing metric.
    pub fn path_metric(&self, src: NodeId, dst: NodeId) -> f64 {
        self.distance
            .get(src.0)
            .and_then(|row| row.get(dst.0))
            .copied()
            .unwrap_or(f64::INFINITY)
    }

    /// The full node sequence from `src` to `dst`, inclusive, if reachable.
    pub fn path(&self, topo: &Topology, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        let mut path = vec![src];
        let mut at = src;
        let mut hops = 0;
        while at != dst {
            let link = self.next_hop(at, dst)?;
            let edge = topo.edge(link)?;
            at = edge.to;
            path.push(at);
            hops += 1;
            if hops > topo.node_count() {
                return None; // routing loop guard
            }
        }
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;
    use crate::node::NodeSpec;

    fn line_topology(n: usize) -> Topology {
        let mut t = Topology::new();
        let ids: Vec<NodeId> = (0..n)
            .map(|i| t.add_node(NodeSpec::workstation(format!("n{i}"), 1.0)))
            .collect();
        for w in ids.windows(2) {
            t.connect(w[0], w[1], LinkSpec::from_mbps(100.0, 0.01));
        }
        t
    }

    #[test]
    fn direct_neighbors_route_directly() {
        let topo = line_topology(3);
        let rt = RoutingTable::build(&topo);
        let hop = rt.next_hop(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(topo.edge(hop).unwrap().to, NodeId(1));
    }

    #[test]
    fn multi_hop_paths_follow_the_line() {
        let topo = line_topology(5);
        let rt = RoutingTable::build(&topo);
        let path = rt.path(&topo, NodeId(0), NodeId(4)).unwrap();
        assert_eq!(
            path,
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
        );
        assert!(rt.reachable(NodeId(0), NodeId(4)));
        assert!(rt.path_metric(NodeId(0), NodeId(4)) > rt.path_metric(NodeId(0), NodeId(1)));
    }

    #[test]
    fn unreachable_nodes_are_reported() {
        let mut topo = line_topology(2);
        let isolated = topo.add_node(NodeSpec::workstation("iso", 1.0));
        let rt = RoutingTable::build(&topo);
        assert!(!rt.reachable(NodeId(0), isolated));
        assert!(rt.next_hop(NodeId(0), isolated).is_none());
        assert!(rt.path(&topo, NodeId(0), isolated).is_none());
        assert!(rt.path_metric(NodeId(0), isolated).is_infinite());
    }

    #[test]
    fn self_route_is_trivial() {
        let topo = line_topology(2);
        let rt = RoutingTable::build(&topo);
        assert!(rt.reachable(NodeId(0), NodeId(0)));
        assert!(rt.next_hop(NodeId(0), NodeId(0)).is_none());
        assert_eq!(
            rt.path(&topo, NodeId(1), NodeId(1)).unwrap(),
            vec![NodeId(1)]
        );
    }

    #[test]
    fn prefers_faster_route() {
        // Triangle where the direct 0->2 link is very slow; routing should go
        // through node 1.
        let mut t = Topology::new();
        let a = t.add_node(NodeSpec::workstation("a", 1.0));
        let b = t.add_node(NodeSpec::workstation("b", 1.0));
        let c = t.add_node(NodeSpec::workstation("c", 1.0));
        t.connect(a, b, LinkSpec::from_mbps(1000.0, 0.001));
        t.connect(b, c, LinkSpec::from_mbps(1000.0, 0.001));
        t.connect(a, c, LinkSpec::from_mbps(0.1, 0.5));
        let rt = RoutingTable::build(&t);
        let path = rt.path(&t, a, c).unwrap();
        assert_eq!(path, vec![a, b, c]);
    }
}
