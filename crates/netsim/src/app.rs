//! The application interface: event-driven state machines on nodes.
//!
//! Transport senders/receivers (`ricsa-transport`) and RICSA framework roles
//! (`ricsa-core`) implement [`Application`].  During a callback the
//! application interacts with the simulator exclusively through [`Context`]:
//! it can read the clock, send datagrams, set timers, and emit trace records.
//! The collected side effects are applied by the engine when the callback
//! returns, which keeps the borrow structure simple and the execution order
//! deterministic.

use crate::node::NodeId;
use crate::packet::{Datagram, Payload};
use crate::time::SimTime;
use crate::trace::TraceEvent;

/// An event-driven application installed on a simulated node.
///
/// All callbacks have empty default implementations so that simple
/// applications only implement what they need.
pub trait Application {
    /// Called once when the simulation starts (or when the application is
    /// installed into an already-running simulation).
    fn on_start(&mut self, _ctx: &mut Context) {}

    /// Called when a datagram addressed to this node is delivered.
    fn on_datagram(&mut self, _ctx: &mut Context, _dg: Datagram) {}

    /// Called when a timer previously set through [`Context::set_timer`]
    /// fires.
    fn on_timer(&mut self, _ctx: &mut Context, _timer_id: u64) {}
}

/// Side-effect request: send a datagram to `dst`.
#[derive(Debug, Clone)]
pub struct SendRequest {
    /// Destination node of the requested send.
    pub dst: NodeId,
    /// Payload of the requested send.
    pub payload: Payload,
}

/// Side-effect request: fire a timer after `delay`.
#[derive(Debug, Clone)]
pub struct TimerRequest {
    /// Delay after which the timer fires.
    pub delay: SimTime,
    /// Identifier that will be passed to `Application::on_timer`.
    pub timer_id: u64,
}

/// The simulator services exposed to an application during a callback.
pub struct Context {
    node: NodeId,
    now: SimTime,
    next_timer_id: u64,
    pub(crate) sends: Vec<SendRequest>,
    pub(crate) timers: Vec<TimerRequest>,
    pub(crate) traces: Vec<TraceEvent>,
    pub(crate) random_draws: Vec<f64>,
    random_cursor: usize,
}

impl Context {
    /// Construct a context directly.
    ///
    /// The simulation engine builds contexts internally; this constructor is
    /// public so that applications (transport protocols, framework roles) can
    /// be unit-tested in isolation without spinning up a full simulator.
    pub fn new(node: NodeId, now: SimTime, next_timer_id: u64, randoms: Vec<f64>) -> Self {
        Context {
            node,
            now,
            next_timer_id,
            sends: Vec::new(),
            timers: Vec::new(),
            traces: Vec::new(),
            random_draws: randoms,
            random_cursor: 0,
        }
    }

    /// The node this application is installed on.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Send a datagram to another node.  Delivery (or loss) is decided by the
    /// links along the routed path.
    pub fn send(&mut self, dst: NodeId, payload: Payload) {
        self.sends.push(SendRequest { dst, payload });
    }

    /// Schedule a timer `delay` in the future; returns the timer identifier
    /// that will be passed back to [`Application::on_timer`].
    pub fn set_timer(&mut self, delay: SimTime) -> u64 {
        let id = self.next_timer_id;
        self.next_timer_id += 1;
        self.timers.push(TimerRequest {
            delay,
            timer_id: id,
        });
        id
    }

    /// A deterministic uniform draw in `[0, 1)` tied to the simulation seed.
    ///
    /// A bounded number of draws (currently 4) is available per callback;
    /// further calls repeat the last value, which keeps the engine
    /// deterministic without unbounded pre-generation.
    pub fn random(&mut self) -> f64 {
        let v = self
            .random_draws
            .get(self.random_cursor)
            .or_else(|| self.random_draws.last())
            .copied()
            .unwrap_or(0.5);
        if self.random_cursor + 1 < self.random_draws.len() {
            self.random_cursor += 1;
        }
        v
    }

    /// Record a trace event visible to the experiment harness.
    pub fn trace(&mut self, event: TraceEvent) {
        self.traces.push(event);
    }

    pub(crate) fn next_timer_id(&self) -> u64 {
        self.next_timer_id
    }

    /// The datagram sends requested so far in this callback (test helper).
    pub fn outgoing(&self) -> &[SendRequest] {
        &self.sends
    }

    /// The timers scheduled so far in this callback (test helper).
    pub fn scheduled_timers(&self) -> &[TimerRequest] {
        &self.timers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_collects_side_effects() {
        let mut ctx = Context::new(NodeId(2), SimTime::from_secs(1.0), 10, vec![0.25, 0.75]);
        assert_eq!(ctx.node_id(), NodeId(2));
        assert_eq!(ctx.now(), SimTime::from_secs(1.0));
        ctx.send(NodeId(3), Payload::opaque(100));
        let t1 = ctx.set_timer(SimTime::from_millis(5.0));
        let t2 = ctx.set_timer(SimTime::from_millis(10.0));
        assert_eq!(t1, 10);
        assert_eq!(t2, 11);
        assert_eq!(ctx.sends.len(), 1);
        assert_eq!(ctx.timers.len(), 2);
        assert_eq!(ctx.next_timer_id(), 12);
    }

    #[test]
    fn random_draws_are_bounded_and_stable() {
        let mut ctx = Context::new(NodeId(0), SimTime::ZERO, 0, vec![0.1, 0.2]);
        assert_eq!(ctx.random(), 0.1);
        assert_eq!(ctx.random(), 0.2);
        // Exhausted: repeats the last value instead of panicking.
        assert_eq!(ctx.random(), 0.2);
        let mut empty = Context::new(NodeId(0), SimTime::ZERO, 0, vec![]);
        assert_eq!(empty.random(), 0.5);
    }

    #[test]
    fn default_application_methods_are_noops() {
        struct Nothing;
        impl Application for Nothing {}
        let mut app = Nothing;
        let mut ctx = Context::new(NodeId(0), SimTime::ZERO, 0, vec![]);
        app.on_start(&mut ctx);
        app.on_timer(&mut ctx, 0);
        app.on_datagram(
            &mut ctx,
            Datagram {
                src: NodeId(1),
                dst: NodeId(0),
                sent_at: SimTime::ZERO,
                payload: Payload::opaque(1),
            },
        );
        assert!(ctx.sends.is_empty());
        assert!(ctx.timers.is_empty());
    }
}
