//! Network links.
//!
//! A link models one direction of a wide-area virtual connection between two
//! overlay nodes (the paper calls these *virtual links*, Section 4.3): it has
//! a raw bandwidth `b_{i,j}` (bytes/second), a minimum link delay `d_{i,j}`
//! (propagation plus fixed equipment delay), a bounded FIFO queue, a loss
//! process and a cross-traffic process.
//!
//! Transmission of a datagram of wire size `s` that arrives at an idle link at
//! time `t` completes at `t + s / b_eff(t)` and is delivered to the remote
//! node at `t + s / b_eff(t) + d`, where `b_eff` is the raw bandwidth reduced
//! by the instantaneous cross-traffic load.  A busy link serializes datagrams
//! FIFO; datagrams whose queuing delay would exceed the configured limit are
//! dropped (tail drop), which is what closes the control loop for the
//! congestion-reactive transports.

use crate::crosstraffic::{CrossTraffic, CrossTrafficState};
use crate::dynamics::LinkChange;
use crate::loss::{LossModel, LossState};
use crate::node::NodeId;
use crate::rng::SimRng;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a directed link inside a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub usize);

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Static description of one direction of a link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Raw link bandwidth in bytes per second.
    pub bandwidth_bps: f64,
    /// Minimum link delay (propagation + fixed equipment delay), seconds.
    pub min_delay: f64,
    /// Maximum queuing delay before tail drop, seconds.
    pub max_queue_delay: f64,
    /// Random loss process.
    pub loss: LossModel,
    /// Cross-traffic process.
    pub cross_traffic: CrossTraffic,
    /// Random per-datagram jitter added to the delivery time, seconds
    /// (uniform in `[0, jitter]`); models equipment-associated randomness.
    pub jitter: f64,
}

impl LinkSpec {
    /// A clean link with the given bandwidth (bytes/s) and minimum delay (s).
    pub fn new(bandwidth_bps: f64, min_delay: f64) -> Self {
        LinkSpec {
            bandwidth_bps,
            min_delay,
            max_queue_delay: 0.5,
            loss: LossModel::None,
            cross_traffic: CrossTraffic::None,
            jitter: 0.0,
        }
    }

    /// Convenience constructor taking megabits per second.
    pub fn from_mbps(mbps: f64, min_delay: f64) -> Self {
        Self::new(mbps * 1e6 / 8.0, min_delay)
    }

    /// Builder-style loss model.
    pub fn with_loss(mut self, loss: LossModel) -> Self {
        self.loss = loss;
        self
    }

    /// Builder-style cross traffic.
    pub fn with_cross_traffic(mut self, ct: CrossTraffic) -> Self {
        self.cross_traffic = ct;
        self
    }

    /// Builder-style jitter bound (seconds).
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.max(0.0);
        self
    }

    /// Builder-style queue limit (seconds of queuing delay).
    pub fn with_queue_delay(mut self, max_queue_delay: f64) -> Self {
        self.max_queue_delay = max_queue_delay.max(0.0);
        self
    }

    /// Validate the specification.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.bandwidth_bps.is_finite() && self.bandwidth_bps > 0.0) {
            return Err(format!(
                "link bandwidth must be positive, got {}",
                self.bandwidth_bps
            ));
        }
        if !(self.min_delay.is_finite() && self.min_delay >= 0.0) {
            return Err(format!(
                "link delay must be non-negative, got {}",
                self.min_delay
            ));
        }
        if self.jitter < 0.0 || !self.jitter.is_finite() {
            return Err("link jitter must be non-negative and finite".into());
        }
        Ok(())
    }

    /// The mean bandwidth effectively available once cross traffic is
    /// accounted for, in bytes/second.
    pub fn mean_effective_bandwidth(&self) -> f64 {
        self.bandwidth_bps * (1.0 - self.cross_traffic.mean_load())
    }

    /// Ideal (no-loss, no-queue) transfer time for a message of `bytes`.
    pub fn ideal_transfer_time(&self, bytes: f64) -> f64 {
        bytes / self.mean_effective_bandwidth() + self.min_delay
    }
}

/// The outcome of offering a datagram to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkOutcome {
    /// The datagram will be delivered at the contained time.
    Deliver(SimTime),
    /// The datagram was dropped by the random loss process.
    RandomLoss,
    /// The datagram was dropped because the queue limit was exceeded.
    QueueDrop,
}

/// Runtime state of a directed link.
#[derive(Debug)]
pub struct Link {
    /// Identifier of this link.
    pub id: LinkId,
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Current parameters (mutable at runtime by scheduled link changes).
    pub spec: LinkSpec,
    /// The original parameters, which relative changes refer to (see
    /// [`crate::dynamics::LinkChange`]).
    base: LinkSpec,
    loss: LossState,
    cross: CrossTrafficState,
    /// Time at which the transmitter becomes free.
    busy_until: SimTime,
    jitter_rng: SimRng,
    stats: LinkStats,
}

/// Per-link counters.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Datagrams offered to the link.
    pub offered: u64,
    /// Datagrams delivered to the remote node.
    pub delivered: u64,
    /// Datagrams dropped by the random loss process.
    pub random_losses: u64,
    /// Datagrams dropped at the queue.
    pub queue_drops: u64,
    /// Total payload bytes delivered.
    pub bytes_delivered: u64,
    /// Busy time accumulated by the transmitter, seconds.
    pub busy_time: f64,
}

impl LinkStats {
    /// Fraction of offered datagrams lost for any reason.
    pub fn loss_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            (self.random_losses + self.queue_drops) as f64 / self.offered as f64
        }
    }

    /// Mean delivered throughput over the given horizon, bytes/second.
    pub fn mean_throughput(&self, horizon: SimTime) -> f64 {
        let secs = horizon.as_secs();
        if secs <= 0.0 {
            0.0
        } else {
            self.bytes_delivered as f64 / secs
        }
    }
}

impl Link {
    /// Instantiate the runtime state for a link.
    pub fn new(id: LinkId, from: NodeId, to: NodeId, spec: LinkSpec, rng: &mut SimRng) -> Self {
        let loss = spec.loss.instantiate();
        let cross = spec.cross_traffic.instantiate(rng);
        Link {
            id,
            from,
            to,
            base: spec.clone(),
            spec,
            loss,
            cross,
            busy_until: SimTime::ZERO,
            jitter_rng: rng.fork(0x11_77),
            stats: LinkStats::default(),
        }
    }

    /// Offer a datagram of `wire_bytes` to the link at time `now`.
    ///
    /// Returns when (and whether) the datagram reaches the remote node.
    pub fn offer(&mut self, now: SimTime, wire_bytes: usize, rng: &mut SimRng) -> LinkOutcome {
        self.stats.offered += 1;

        // Queue check: how long would this datagram wait before transmission?
        let wait = self.busy_until.saturating_sub(now);
        if wait.as_secs() > self.spec.max_queue_delay {
            self.stats.queue_drops += 1;
            return LinkOutcome::QueueDrop;
        }

        // Random loss (modelled at ingress; a lost datagram still does not
        // consume transmitter time, approximating loss on a downstream hop of
        // the underlying multi-hop physical path).
        if self.loss.should_drop(rng) {
            self.stats.random_losses += 1;
            return LinkOutcome::RandomLoss;
        }

        let start = self.busy_until.max(now);
        let load = self.cross.load_at(start.as_secs());
        let effective_bw = (self.spec.bandwidth_bps * (1.0 - load)).max(1.0);
        let tx_time = wire_bytes as f64 / effective_bw;
        let done = start + tx_time;
        self.busy_until = done;
        self.stats.busy_time += tx_time;

        let jitter = if self.spec.jitter > 0.0 {
            self.jitter_rng.uniform_range(0.0, self.spec.jitter)
        } else {
            0.0
        };
        let arrival = done + self.spec.min_delay + jitter;
        self.stats.delivered += 1;
        self.stats.bytes_delivered += wire_bytes as u64;
        LinkOutcome::Deliver(arrival)
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &LinkStats {
        &self.stats
    }

    /// The time at which the transmitter becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Apply a runtime mutation.  Relative changes (bandwidth scaling,
    /// restore) refer to the link's *original* specification, so repeated
    /// application is idempotent.  A transmission already in progress keeps
    /// its old completion time; subsequent offers see the new parameters.
    pub fn apply_change(&mut self, change: &LinkChange, rng: &mut SimRng) {
        match change {
            LinkChange::ScaleBandwidth { factor } => {
                self.spec.bandwidth_bps = (self.base.bandwidth_bps * factor.max(0.0)).max(1.0);
            }
            LinkChange::SetCrossTraffic { model } => {
                self.spec.cross_traffic = model.clone();
                self.cross = model.instantiate(rng);
            }
            LinkChange::Restore => {
                self.spec = self.base.clone();
                self.cross = self.spec.cross_traffic.instantiate(rng);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_link(spec: LinkSpec) -> (Link, SimRng) {
        let mut rng = SimRng::new(5);
        let link = Link::new(LinkId(0), NodeId(0), NodeId(1), spec, &mut rng);
        (link, rng)
    }

    #[test]
    fn spec_constructors_and_validation() {
        let s = LinkSpec::from_mbps(100.0, 0.01);
        assert!((s.bandwidth_bps - 12.5e6).abs() < 1e-6);
        assert!(s.validate().is_ok());
        assert!(LinkSpec::new(0.0, 0.01).validate().is_err());
        assert!(LinkSpec::new(1e6, -1.0).validate().is_err());
        assert!(LinkSpec::new(1e6, 0.0).with_jitter(-1.0).validate().is_ok());
        assert!((s.ideal_transfer_time(12.5e6) - 1.01).abs() < 1e-9);
    }

    #[test]
    fn idle_link_delivers_with_serialization_plus_propagation() {
        // 1 MB/s link, 100 ms delay, 1000-byte datagram -> 1 ms + 100 ms.
        let (mut link, mut rng) = mk_link(LinkSpec::new(1e6, 0.1));
        match link.offer(SimTime::ZERO, 1000, &mut rng) {
            LinkOutcome::Deliver(t) => assert!((t.as_secs() - 0.101).abs() < 1e-9),
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(link.stats().delivered, 1);
    }

    #[test]
    fn back_to_back_datagrams_serialize_fifo() {
        let (mut link, mut rng) = mk_link(LinkSpec::new(1e6, 0.0).with_queue_delay(10.0));
        let t1 = match link.offer(SimTime::ZERO, 1000, &mut rng) {
            LinkOutcome::Deliver(t) => t,
            o => panic!("{o:?}"),
        };
        let t2 = match link.offer(SimTime::ZERO, 1000, &mut rng) {
            LinkOutcome::Deliver(t) => t,
            o => panic!("{o:?}"),
        };
        assert!(t2 > t1);
        assert!((t2.as_secs() - 0.002).abs() < 1e-9);
    }

    #[test]
    fn queue_limit_drops_excess() {
        // Tiny queue: second datagram must be dropped because the first one
        // occupies the transmitter for 1 s.
        let (mut link, mut rng) = mk_link(LinkSpec::new(1000.0, 0.0).with_queue_delay(0.1));
        assert!(matches!(
            link.offer(SimTime::ZERO, 1000, &mut rng),
            LinkOutcome::Deliver(_)
        ));
        assert!(matches!(
            link.offer(SimTime::ZERO, 1000, &mut rng),
            LinkOutcome::QueueDrop
        ));
        assert_eq!(link.stats().queue_drops, 1);
        assert!(link.stats().loss_rate() > 0.0);
    }

    #[test]
    fn random_loss_is_applied() {
        let spec = LinkSpec::new(1e9, 0.0).with_loss(LossModel::Bernoulli { p: 1.0 });
        let (mut link, mut rng) = mk_link(spec);
        assert!(matches!(
            link.offer(SimTime::ZERO, 100, &mut rng),
            LinkOutcome::RandomLoss
        ));
        assert_eq!(link.stats().random_losses, 1);
    }

    #[test]
    fn cross_traffic_slows_transmission() {
        let clean = LinkSpec::new(1e6, 0.0);
        let loaded =
            LinkSpec::new(1e6, 0.0).with_cross_traffic(CrossTraffic::Constant { load: 0.5 });
        let (mut a, mut rng_a) = mk_link(clean);
        let (mut b, mut rng_b) = mk_link(loaded);
        let ta = match a.offer(SimTime::ZERO, 100_000, &mut rng_a) {
            LinkOutcome::Deliver(t) => t.as_secs(),
            o => panic!("{o:?}"),
        };
        let tb = match b.offer(SimTime::ZERO, 100_000, &mut rng_b) {
            LinkOutcome::Deliver(t) => t.as_secs(),
            o => panic!("{o:?}"),
        };
        assert!((ta - 0.1).abs() < 1e-9);
        assert!((tb - 0.2).abs() < 1e-6);
    }

    #[test]
    fn jitter_bounds_delivery_time() {
        let spec = LinkSpec::new(1e9, 0.01).with_jitter(0.005);
        let (mut link, mut rng) = mk_link(spec);
        for _ in 0..100 {
            if let LinkOutcome::Deliver(t) = link.offer(SimTime::ZERO, 10, &mut rng) {
                assert!(t.as_secs() >= 0.01);
                assert!(t.as_secs() <= 0.016);
            }
        }
    }

    #[test]
    fn throughput_accounting() {
        let (mut link, mut rng) = mk_link(LinkSpec::new(1e6, 0.0).with_queue_delay(100.0));
        for _ in 0..10 {
            link.offer(SimTime::ZERO, 1000, &mut rng);
        }
        assert_eq!(link.stats().bytes_delivered, 10_000);
        let tput = link.stats().mean_throughput(SimTime::from_secs(0.01));
        assert!((tput - 1e6).abs() < 1e-3);
        assert_eq!(link.stats().mean_throughput(SimTime::ZERO), 0.0);
    }
}
