//! Virtual simulation time.
//!
//! The simulator clock is a non-negative number of seconds stored as `f64`.
//! [`SimTime`] wraps the raw value so that it can be ordered totally (the
//! engine needs a `BinaryHeap` key) and so that arithmetic intent is explicit.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in seconds since the start of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero (simulation start).
    pub const ZERO: SimTime = SimTime(0.0);

    /// Construct from seconds. Negative inputs are clamped to zero.
    pub fn from_secs(secs: f64) -> Self {
        SimTime(if secs < 0.0 { 0.0 } else { secs })
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms / 1_000.0)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: f64) -> Self {
        Self::from_secs(us / 1_000_000.0)
    }

    /// The raw number of seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The raw number of milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 * 1_000.0
    }

    /// Saturating difference `self - other`, never negative.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime((self.0 - other.0).max(0.0))
    }

    /// The larger of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Eq for SimTime {}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // Times are always finite and non-negative by construction.
        self.0.partial_cmp(&other.0).unwrap_or(Ordering::Equal)
    }
}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 + rhs)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime::from_secs(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_clamps_negative() {
        assert_eq!(SimTime::from_secs(-1.0), SimTime::ZERO);
        assert_eq!(
            SimTime::ZERO.saturating_sub(SimTime::from_secs(5.0)),
            SimTime::ZERO
        );
    }

    #[test]
    fn conversions_are_consistent() {
        let t = SimTime::from_millis(1500.0);
        assert!((t.as_secs() - 1.5).abs() < 1e-12);
        assert!((t.as_millis() - 1500.0).abs() < 1e-9);
        let u = SimTime::from_micros(250.0);
        assert!((u.as_secs() - 0.00025).abs() < 1e-12);
    }

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a + b, SimTime::from_secs(3.0));
        assert_eq!(b - a, SimTime::from_secs(1.0));
        assert_eq!(a - b, SimTime::ZERO);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_secs(3.0));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(format!("{}", SimTime::from_secs(0.5)), "0.500000s");
    }
}
