//! Parameterized random WAN generators for scenario sweeps.
//!
//! The paper evaluates RICSA on a single six-site deployment (Fig. 8).  To
//! study the optimizer and transport across "as many scenarios as you can
//! imagine", this module generates families of random wide-area topologies
//! from a 64-bit seed:
//!
//! * **Waxman** graphs ([`waxman`]): nodes scattered uniformly in the unit
//!   square, linked with probability `α·exp(−d/(β·L))` where `d` is the
//!   Euclidean distance and `L` the diagonal — the classic flat random
//!   Internet model (Waxman, JSAC 1988).
//! * **Transit-stub** graphs ([`transit_stub`]): a hierarchical model in the
//!   spirit of GT-ITM (Zegura et al., INFOCOM 1996) — a ring of well-provisioned
//!   transit domains, each transit node fanning out to slower stub domains,
//!   which is where clients and data sources actually live.
//!
//! Every generated topology is **connected by construction** (a random
//! spanning structure is laid down before probabilistic extra links), carries
//! a designated headless *data source* and a graphics-capable *client*, and
//! passes [`Topology::validate`].  Generation is fully deterministic: the
//! same parameters and seed always produce an identical [`Topology`]
//! (`PartialEq`-identical, not merely isomorphic).

use crate::crosstraffic::CrossTraffic;
use crate::link::LinkSpec;
use crate::loss::LossModel;
use crate::node::{NodeId, NodeSpec};
use crate::rng::SimRng;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// How the bandwidth, delay, loss and background load of one class of links
/// are sampled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkDistribution {
    /// Minimum link bandwidth, megabits per second.
    pub mbps_lo: f64,
    /// Maximum link bandwidth, megabits per second.
    pub mbps_hi: f64,
    /// One-way delay of a zero-length link, seconds.
    pub delay_base: f64,
    /// Additional one-way delay per unit of Euclidean distance, seconds
    /// (the unit square has diagonal `√2`).
    pub delay_per_unit: f64,
    /// Bernoulli loss probability applied to every generated link.
    pub loss: f64,
    /// Mean background cross-traffic load in `[0, 0.9]` (0 disables it).
    pub cross_traffic_load: f64,
}

impl LinkDistribution {
    /// Representative wide-area research-network links (fast tier).
    pub fn fast() -> Self {
        LinkDistribution {
            mbps_lo: 200.0,
            mbps_hi: 600.0,
            delay_base: 0.002,
            delay_per_unit: 0.020,
            loss: 0.0002,
            cross_traffic_load: 0.10,
        }
    }

    /// Mid-tier regional links.
    pub fn mid() -> Self {
        LinkDistribution {
            mbps_lo: 60.0,
            mbps_hi: 200.0,
            delay_base: 0.004,
            delay_per_unit: 0.025,
            loss: 0.0005,
            cross_traffic_load: 0.15,
        }
    }

    /// A wide, heterogeneous bandwidth spread (15–500 Mbit/s) for flat
    /// random graphs, where link quality is not predicted by hierarchy:
    /// the spread is what makes route choice matter to the optimizer.
    pub fn wide() -> Self {
        LinkDistribution {
            mbps_lo: 15.0,
            mbps_hi: 500.0,
            delay_base: 0.003,
            delay_per_unit: 0.025,
            loss: 0.0005,
            cross_traffic_load: 0.15,
        }
    }

    /// Slow shared campus/access links.
    pub fn slow() -> Self {
        LinkDistribution {
            mbps_lo: 10.0,
            mbps_hi: 60.0,
            delay_base: 0.006,
            delay_per_unit: 0.030,
            loss: 0.001,
            cross_traffic_load: 0.20,
        }
    }

    /// Sample a [`LinkSpec`] for a link spanning Euclidean `distance`.
    fn sample(&self, distance: f64, rng: &mut SimRng) -> LinkSpec {
        let mbps = rng.uniform_range(self.mbps_lo, self.mbps_hi).max(0.001);
        let delay = self.delay_base + self.delay_per_unit * distance.max(0.0);
        LinkSpec::from_mbps(mbps, delay)
            .with_loss(if self.loss > 0.0 {
                LossModel::Bernoulli { p: self.loss }
            } else {
                LossModel::None
            })
            .with_cross_traffic(if self.cross_traffic_load > 0.0 {
                CrossTraffic::OnOff {
                    low_load: (self.cross_traffic_load * 0.5).min(0.9),
                    high_load: (self.cross_traffic_load * 1.5).min(0.9),
                    mean_low_duration: 2.0,
                    mean_high_duration: 1.0,
                }
            } else {
                CrossTraffic::None
            })
            .with_jitter(0.0015)
            .with_queue_delay(2.0)
    }
}

/// How node compute powers and capabilities are sampled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeMix {
    /// Probability that a node is a cluster computing service (graphics-
    /// capable, MPI-parallel, high power).
    pub cluster_fraction: f64,
    /// Probability that a non-cluster workstation has a graphics card.
    pub graphics_fraction: f64,
    /// Normalized compute power range of PC-class workstations.
    pub pc_power: (f64, f64),
    /// Normalized compute power range of cluster nodes.
    pub cluster_power: (f64, f64),
}

impl Default for NodeMix {
    fn default() -> Self {
        NodeMix {
            cluster_fraction: 0.2,
            graphics_fraction: 0.5,
            pc_power: (0.5, 2.0),
            cluster_power: (3.0, 9.0),
        }
    }
}

impl NodeMix {
    fn sample(&self, name: String, rng: &mut SimRng) -> NodeSpec {
        if rng.coin(self.cluster_fraction) {
            let power = rng.uniform_range(self.cluster_power.0, self.cluster_power.1);
            let workers = 2 + rng.index(15) as u32;
            NodeSpec::cluster(name, power, workers)
        } else {
            let power = rng.uniform_range(self.pc_power.0, self.pc_power.1);
            if rng.coin(self.graphics_fraction) {
                NodeSpec::workstation(name, power)
            } else {
                NodeSpec::headless(name, power)
            }
        }
    }
}

/// Parameters of the flat Waxman random-graph generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WaxmanParams {
    /// Number of nodes (≥ 2).
    pub nodes: usize,
    /// Waxman `α`: overall link density in `(0, 1]`.
    pub alpha: f64,
    /// Waxman `β`: distance decay in `(0, 1]` (larger keeps long links).
    pub beta: f64,
    /// Link parameter distribution.
    pub links: LinkDistribution,
    /// Node parameter distribution.
    pub mix: NodeMix,
}

impl Default for WaxmanParams {
    fn default() -> Self {
        WaxmanParams {
            nodes: 16,
            alpha: 0.4,
            beta: 0.35,
            links: LinkDistribution::wide(),
            mix: NodeMix::default(),
        }
    }
}

impl WaxmanParams {
    /// Default parameters scaled to roughly `nodes` nodes, thinning `α` as
    /// the graph grows so the edge count stays near-linear in `n`.
    pub fn sized(nodes: usize) -> Self {
        let nodes = nodes.max(2);
        WaxmanParams {
            nodes,
            alpha: (6.0 / nodes as f64).clamp(0.02, 0.5),
            ..WaxmanParams::default()
        }
    }
}

/// Parameters of the hierarchical transit-stub generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransitStubParams {
    /// Number of transit domains (≥ 1), connected in a ring.
    pub transit_domains: usize,
    /// Transit nodes per domain (≥ 1), connected in a ring plus chords.
    pub transit_nodes: usize,
    /// Stub domains hanging off each transit node.
    pub stub_domains: usize,
    /// Nodes per stub domain (≥ 1), connected as a tree to a gateway.
    pub stub_nodes: usize,
    /// Probability of an extra chord between two transit nodes of a domain.
    pub transit_chord_probability: f64,
    /// Link distribution of the transit core.
    pub transit_links: LinkDistribution,
    /// Link distribution of transit↔stub attachment links.
    pub attachment_links: LinkDistribution,
    /// Link distribution inside stub domains.
    pub stub_links: LinkDistribution,
    /// Node parameter distribution of stub nodes (transit nodes are always
    /// cluster-class: the well-provisioned computing services live there).
    pub mix: NodeMix,
}

impl Default for TransitStubParams {
    fn default() -> Self {
        TransitStubParams {
            transit_domains: 2,
            transit_nodes: 3,
            stub_domains: 1,
            stub_nodes: 2,
            transit_chord_probability: 0.3,
            transit_links: LinkDistribution::fast(),
            attachment_links: LinkDistribution::mid(),
            stub_links: LinkDistribution::slow(),
            mix: NodeMix::default(),
        }
    }
}

impl TransitStubParams {
    /// Default parameters scaled to roughly `nodes` total nodes.
    pub fn sized(nodes: usize) -> Self {
        let nodes = nodes.max(6);
        // total ≈ domains · transit_nodes · (1 + stub_domains · stub_nodes).
        let mut p = TransitStubParams::default();
        let per_transit = 1 + p.stub_domains * p.stub_nodes;
        let transit_total = (nodes / per_transit).max(2);
        p.transit_domains = (transit_total / 4).clamp(1, 8);
        p.transit_nodes = (transit_total / p.transit_domains).max(1);
        p
    }

    /// Total node count this parameterization produces.
    pub fn total_nodes(&self) -> usize {
        self.transit_domains * self.transit_nodes * (1 + self.stub_domains * self.stub_nodes)
    }
}

/// A generated topology together with the designated experiment roles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratedWan {
    /// Short description of the generator and its scale, for reports.
    pub label: String,
    /// The seed the topology was generated from.
    pub seed: u64,
    /// The generated overlay.
    pub topology: Topology,
    /// The designated data-source node (always headless: the paper's data
    /// sources have no graphics card).
    pub source: NodeId,
    /// The designated client node (always graphics-capable, so the standard
    /// render-terminated pipeline is always feasible).
    pub client: NodeId,
}

/// The family a generated scenario topology is drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WanKind {
    /// Flat Waxman random graph.
    Waxman,
    /// Hierarchical transit-stub graph.
    TransitStub,
}

impl WanKind {
    /// Short lowercase name used in labels and reports.
    pub fn name(self) -> &'static str {
        match self {
            WanKind::Waxman => "waxman",
            WanKind::TransitStub => "transit-stub",
        }
    }
}

/// Generate a topology of the given family with default parameters scaled
/// to roughly `nodes` nodes.
pub fn generate(kind: WanKind, nodes: usize, seed: u64) -> GeneratedWan {
    match kind {
        WanKind::Waxman => waxman(&WaxmanParams::sized(nodes), seed),
        WanKind::TransitStub => transit_stub(&TransitStubParams::sized(nodes), seed),
    }
}

fn distance(a: (f64, f64), b: (f64, f64)) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

/// Enforce the experiment roles the caller picked: force the client to be
/// graphics-capable and the source to be a headless workstation (matching
/// the paper's data-source hosts), rebuilding those node specs in place.
fn assign_roles(topology: &mut Topology, preferred_source: NodeId, preferred_client: NodeId) {
    // Force the client's graphics on and the source's graphics off, so the
    // standard filter → isosurface → render pipeline is always feasible and
    // the source genuinely needs the network to get pixels rendered.
    let client_spec = topology
        .node(preferred_client)
        .expect("client id is in range")
        .clone();
    if !client_spec.capabilities.has_graphics {
        let mut fixed = client_spec;
        fixed.capabilities.has_graphics = true;
        replace_node(topology, preferred_client, fixed);
    }
    let source_spec = topology
        .node(preferred_source)
        .expect("source id is in range")
        .clone();
    if source_spec.capabilities.has_graphics || source_spec.capabilities.is_cluster {
        replace_node(
            topology,
            preferred_source,
            NodeSpec::headless(source_spec.name, source_spec.compute_power),
        );
    }
}

fn replace_node(topology: &mut Topology, id: NodeId, spec: NodeSpec) {
    // Topology has no in-place node mutation API; rebuild preserving order.
    let mut rebuilt = Topology::new();
    for (nid, n) in topology.nodes() {
        rebuilt.add_node(if nid == id { spec.clone() } else { n.clone() });
    }
    for e in topology.edges() {
        rebuilt.connect_directed(e.from, e.to, e.spec.clone());
    }
    *topology = rebuilt;
}

/// Generate a flat Waxman random WAN.
///
/// Connectivity is guaranteed by first wiring a random spanning tree (node
/// `i` attaches to a uniformly random earlier node), then adding each
/// remaining pair `(i, j)` with probability `α·exp(−d(i,j)/(β·√2))`.
pub fn waxman(params: &WaxmanParams, seed: u64) -> GeneratedWan {
    let n = params.nodes.max(2);
    let mut rng = SimRng::new(seed);
    let mut positions = Vec::with_capacity(n);
    let mut topology = Topology::new();
    for i in 0..n {
        positions.push((rng.uniform(), rng.uniform()));
        let spec = params.mix.sample(format!("w{i}"), &mut rng);
        topology.add_node(spec);
    }
    // Random spanning tree.
    let mut tree_partner = Vec::with_capacity(n);
    for i in 1..n {
        tree_partner.push(rng.index(i));
    }
    for (i, &j) in (1..n).zip(tree_partner.iter()) {
        let spec = params
            .links
            .sample(distance(positions[i], positions[j]), &mut rng);
        topology.connect(NodeId(i), NodeId(j), spec);
    }
    // Waxman extra links.
    let diagonal = std::f64::consts::SQRT_2;
    for i in 0..n {
        for j in (i + 1)..n {
            if topology.edge_between(NodeId(i), NodeId(j)).is_some() {
                continue;
            }
            let d = distance(positions[i], positions[j]);
            let p = params.alpha * (-d / (params.beta * diagonal)).exp();
            if rng.coin(p) {
                let spec = params.links.sample(d, &mut rng);
                topology.connect(NodeId(i), NodeId(j), spec);
            }
        }
    }
    // Roles: the client is the farthest node from node 0 (the source), so
    // the pipeline genuinely crosses the generated WAN.
    let source = NodeId(0);
    let client = NodeId(
        (1..n)
            .max_by(|&a, &b| {
                let da = distance(positions[0], positions[a]);
                let db = distance(positions[0], positions[b]);
                da.partial_cmp(&db).expect("distances are finite")
            })
            .expect("n >= 2"),
    );
    assign_roles(&mut topology, source, client);
    GeneratedWan {
        label: format!("waxman(n={n}, α={:.2}, β={:.2})", params.alpha, params.beta),
        seed,
        topology,
        source,
        client,
    }
}

/// Generate a hierarchical transit-stub WAN.
///
/// Transit domains form a ring; inside a domain the transit nodes form a
/// ring plus random chords; every transit node is a cluster-class computing
/// service; each stub domain is a random tree of PC-class nodes rooted at a
/// gateway that attaches to its transit node.  The client lives in the first
/// stub domain of the first transit domain and the data source in the stub
/// domain diametrically across the transit ring.
pub fn transit_stub(params: &TransitStubParams, seed: u64) -> GeneratedWan {
    let mut rng = SimRng::new(seed);
    let mut topology = Topology::new();
    let domains = params.transit_domains.max(1);
    let mut per_domain = params.transit_nodes.max(1);
    if domains == 1 && per_domain == 1 && params.stub_domains == 0 {
        // A single-node "WAN" cannot host distinct source and client roles.
        per_domain = 2;
    }

    // Synthetic geography: transit domains sit on a circle of radius 0.5
    // around (0.5, 0.5); stubs scatter near their transit node.
    let mut transit: Vec<Vec<NodeId>> = Vec::with_capacity(domains);
    let mut transit_pos: Vec<Vec<(f64, f64)>> = Vec::with_capacity(domains);
    for d in 0..domains {
        let angle = 2.0 * std::f64::consts::PI * d as f64 / domains as f64;
        let center = (0.5 + 0.4 * angle.cos(), 0.5 + 0.4 * angle.sin());
        let mut ids = Vec::with_capacity(per_domain);
        let mut pos = Vec::with_capacity(per_domain);
        for t in 0..per_domain {
            let p = (
                center.0 + rng.uniform_range(-0.05, 0.05),
                center.1 + rng.uniform_range(-0.05, 0.05),
            );
            let power = rng.uniform_range(params.mix.cluster_power.0, params.mix.cluster_power.1);
            let workers = 4 + rng.index(13) as u32;
            let id = topology.add_node(NodeSpec::cluster(format!("t{d}.{t}"), power, workers));
            ids.push(id);
            pos.push(p);
        }
        // Intra-domain ring plus chords.
        for t in 0..per_domain {
            if per_domain > 1 && (t + 1 < per_domain || per_domain > 2) {
                let u = (t + 1) % per_domain;
                if topology.edge_between(ids[t], ids[u]).is_none() {
                    let spec = params
                        .transit_links
                        .sample(distance(pos[t], pos[u]), &mut rng);
                    topology.connect(ids[t], ids[u], spec);
                }
            }
        }
        for a in 0..per_domain {
            for b in (a + 2)..per_domain {
                if topology.edge_between(ids[a], ids[b]).is_none()
                    && rng.coin(params.transit_chord_probability)
                {
                    let spec = params
                        .transit_links
                        .sample(distance(pos[a], pos[b]), &mut rng);
                    topology.connect(ids[a], ids[b], spec);
                }
            }
        }
        transit.push(ids);
        transit_pos.push(pos);
    }
    // Inter-domain ring (one link between random members of adjacent
    // domains); a single domain needs no inter-domain links.
    if domains > 1 {
        for d in 0..domains {
            let e = (d + 1) % domains;
            if d == e || (domains == 2 && d == 1) {
                continue;
            }
            let a = transit[d][rng.index(transit[d].len())];
            let b = transit[e][rng.index(transit[e].len())];
            let pa = transit_pos[d][a.0 - transit[d][0].0];
            let pb = transit_pos[e][b.0 - transit[e][0].0];
            let spec = params.transit_links.sample(distance(pa, pb), &mut rng);
            topology.connect(a, b, spec);
        }
    }
    // Stub domains.
    let mut first_stub_node: Option<NodeId> = None;
    let mut far_stub_node: Option<NodeId> = None;
    let far_domain = domains / 2;
    for (d, domain) in transit.iter().enumerate() {
        for (t, &tid) in domain.iter().enumerate() {
            for s in 0..params.stub_domains {
                let mut stub_ids: Vec<NodeId> = Vec::with_capacity(params.stub_nodes.max(1));
                for k in 0..params.stub_nodes.max(1) {
                    let spec = params.mix.sample(format!("s{d}.{t}.{s}.{k}"), &mut rng);
                    // Stub nodes are end hosts, not clusters.
                    let spec = if spec.capabilities.is_cluster {
                        NodeSpec::workstation(spec.name, params.mix.pc_power.1)
                    } else {
                        spec
                    };
                    let id = topology.add_node(spec);
                    // Tree: attach to the gateway (k == 0 attaches to the
                    // transit node) or to a random earlier stub node.
                    let (parent, links) = if k == 0 {
                        (tid, &params.attachment_links)
                    } else {
                        (stub_ids[rng.index(stub_ids.len())], &params.stub_links)
                    };
                    let hop = 0.02 + 0.03 * rng.uniform();
                    let spec = links.sample(hop, &mut rng);
                    topology.connect(id, parent, spec);
                    stub_ids.push(id);
                }
                if d == 0 && t == 0 && s == 0 {
                    first_stub_node = stub_ids.last().copied();
                }
                if d == far_domain && far_stub_node.is_none() {
                    far_stub_node = stub_ids.last().copied();
                }
            }
        }
    }
    // Roles: client in the first stub domain, source across the ring (or, if
    // there are no stub nodes at all, the two most distant transit nodes).
    let client = first_stub_node.unwrap_or(transit[0][0]);
    let source = far_stub_node
        .filter(|&s| s != client)
        .unwrap_or_else(|| transit[far_domain][per_domain - 1]);
    let (client, source) = if client == source {
        (transit[0][0], source)
    } else {
        (client, source)
    };
    assign_roles(&mut topology, source, client);
    GeneratedWan {
        label: format!(
            "transit-stub(T={domains}×{per_domain}, S={}×{}, n={})",
            params.stub_domains,
            params.stub_nodes,
            topology.node_count()
        ),
        seed,
        topology,
        source,
        client,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::RoutingTable;

    fn check_wan(wan: &GeneratedWan) {
        assert!(wan.topology.validate().is_ok(), "{}", wan.label);
        assert_ne!(wan.source, wan.client);
        let rt = RoutingTable::build(&wan.topology);
        for (id, _) in wan.topology.nodes() {
            assert!(
                rt.reachable(wan.source, id),
                "{}: node {id} unreachable from source",
                wan.label
            );
        }
        let client = wan.topology.node(wan.client).unwrap();
        assert!(client.capabilities.has_graphics, "{}", wan.label);
        let source = wan.topology.node(wan.source).unwrap();
        assert!(!source.capabilities.has_graphics, "{}", wan.label);
    }

    #[test]
    fn waxman_is_deterministic_per_seed() {
        for seed in [0u64, 1, 42, 0xDEADBEEF] {
            let a = waxman(&WaxmanParams::default(), seed);
            let b = waxman(&WaxmanParams::default(), seed);
            assert_eq!(a, b);
        }
        let a = waxman(&WaxmanParams::default(), 1);
        let b = waxman(&WaxmanParams::default(), 2);
        assert_ne!(a, b);
    }

    #[test]
    fn transit_stub_is_deterministic_per_seed() {
        for seed in [0u64, 7, 999] {
            let a = transit_stub(&TransitStubParams::default(), seed);
            let b = transit_stub(&TransitStubParams::default(), seed);
            assert_eq!(a, b);
        }
        let a = transit_stub(&TransitStubParams::default(), 5);
        let b = transit_stub(&TransitStubParams::default(), 6);
        assert_ne!(a, b);
    }

    #[test]
    fn waxman_topologies_are_connected_and_feasible_across_sizes_and_seeds() {
        for &nodes in &[2usize, 6, 16, 64, 200] {
            for seed in 0..5 {
                let wan = waxman(&WaxmanParams::sized(nodes), seed);
                assert_eq!(wan.topology.node_count(), nodes.max(2));
                check_wan(&wan);
            }
        }
    }

    #[test]
    fn transit_stub_topologies_are_connected_and_feasible_across_sizes_and_seeds() {
        for &nodes in &[6usize, 12, 48, 150, 520] {
            for seed in 0..5 {
                let wan = transit_stub(&TransitStubParams::sized(nodes), seed);
                assert!(wan.topology.node_count() >= 6, "{}", wan.label);
                check_wan(&wan);
            }
        }
    }

    #[test]
    fn sized_transit_stub_reaches_five_hundred_nodes() {
        let p = TransitStubParams {
            transit_domains: 6,
            transit_nodes: 4,
            stub_domains: 5,
            stub_nodes: 4,
            ..TransitStubParams::default()
        };
        assert!(p.total_nodes() >= 500);
        let wan = transit_stub(&p, 3);
        assert!(wan.topology.node_count() >= 500);
        check_wan(&wan);
    }

    #[test]
    fn generate_dispatches_on_kind() {
        let w = generate(WanKind::Waxman, 10, 1);
        assert!(w.label.starts_with("waxman"));
        let t = generate(WanKind::TransitStub, 20, 1);
        assert!(t.label.starts_with("transit-stub"));
        assert_eq!(WanKind::Waxman.name(), "waxman");
        assert_eq!(WanKind::TransitStub.name(), "transit-stub");
    }

    #[test]
    fn generated_link_classes_are_ordered() {
        // Transit links must be faster than stub links on average, or the
        // hierarchy is meaningless.
        let fast = LinkDistribution::fast();
        let slow = LinkDistribution::slow();
        assert!(fast.mbps_lo > slow.mbps_hi);
    }
}
