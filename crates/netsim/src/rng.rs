//! Deterministic random number generation for the simulator.
//!
//! All stochastic behaviour in the network simulator (loss sampling, cross
//! traffic, jitter) is driven by a single seedable generator so that a run is
//! exactly reproducible from `(topology, seed)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seedable simulator RNG with convenience sampling methods.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent stream for a sub-component, so that adding a new
    /// consumer does not perturb the draws of existing ones.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base: u64 = self.inner.gen();
        SimRng::new(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// A uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A uniform sample in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.uniform()
    }

    /// A Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    pub fn coin(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.uniform() < p
    }

    /// An exponential sample with the given mean (returns 0 for mean <= 0).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        let u: f64 = self.uniform().max(1e-300);
        -mean * u.ln()
    }

    /// A normal sample via Box-Muller.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1: f64 = self.uniform().max(1e-300);
        let u2: f64 = self.uniform();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std_dev * z
    }

    /// A uniform integer in `[0, n)`, or 0 if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            self.inner.gen_range(0..n)
        }
    }

    /// A raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seed_differs() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn uniform_in_range() {
        let mut r = SimRng::new(7);
        for _ in 0..1000 {
            let x = r.uniform_range(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
        }
        assert_eq!(r.uniform_range(5.0, 5.0), 5.0);
        assert_eq!(r.uniform_range(5.0, 1.0), 5.0);
    }

    #[test]
    fn coin_respects_extremes() {
        let mut r = SimRng::new(9);
        assert!(!(0..100).any(|_| r.coin(0.0)));
        assert!((0..100).all(|_| r.coin(1.0)));
        assert!((0..100).all(|_| r.coin(2.0)));
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = SimRng::new(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exponential(0.5)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert_eq!(r.exponential(0.0), 0.0);
        assert_eq!(r.exponential(-1.0), 0.0);
    }

    #[test]
    fn normal_moments_are_close() {
        let mut r = SimRng::new(13);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn index_bounds() {
        let mut r = SimRng::new(17);
        assert_eq!(r.index(0), 0);
        for _ in 0..100 {
            assert!(r.index(5) < 5);
        }
    }

    #[test]
    fn fork_streams_are_independent_of_order() {
        let mut a = SimRng::new(100);
        let mut fork_a = a.fork(1);
        let mut b = SimRng::new(100);
        let mut fork_b = b.fork(1);
        for _ in 0..10 {
            assert_eq!(fork_a.next_u64(), fork_b.next_u64());
        }
    }
}
