//! The discrete-event simulation engine.
//!
//! The engine owns the topology, the per-link runtime state, one
//! [`Application`] per node, the event queue, the RNG and the trace.  It
//! advances virtual time by popping events in deterministic order and
//! dispatching them to applications; side effects requested by applications
//! (sends, timers, traces) are applied when the callback returns.

use crate::app::{Application, Context};
use crate::dynamics::{DynamicScenario, LinkChange};
use crate::event::{EventKind, EventQueue};
use crate::link::{Link, LinkId, LinkOutcome};
use crate::node::NodeId;
use crate::packet::{Datagram, Payload};
use crate::rng::SimRng;
use crate::routing::RoutingTable;
use crate::time::SimTime;
use crate::topology::Topology;
use crate::trace::Trace;
use std::collections::HashMap;

/// Number of pre-generated uniform draws handed to each application callback.
/// Kept small because most applications never call `Context::random` and the
/// draws are regenerated for every dispatched event.
const RANDOMS_PER_CALLBACK: usize = 4;

/// The discrete-event simulator.
pub struct Simulator {
    topology: Topology,
    routing: RoutingTable,
    links: Vec<Link>,
    apps: HashMap<NodeId, Box<dyn Application>>,
    queue: EventQueue,
    now: SimTime,
    rng: SimRng,
    trace: Trace,
    next_timer_ids: HashMap<NodeId, u64>,
    started: bool,
    stats: SimStats,
}

/// Engine-level counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Total events dispatched.
    pub events_processed: u64,
    /// Datagrams handed to the network by applications.
    pub datagrams_sent: u64,
    /// Datagrams delivered to their final destination application.
    pub datagrams_delivered: u64,
    /// Datagrams dropped anywhere along their path.
    pub datagrams_dropped: u64,
    /// Datagrams addressed to unreachable destinations.
    pub datagrams_unroutable: u64,
    /// Scheduled link mutations applied (time-varying scenarios).
    pub link_changes: u64,
}

impl Simulator {
    /// Create a simulator for a topology with the given RNG seed.
    ///
    /// # Panics
    /// Panics if the topology fails validation; experiments should always be
    /// run on validated topologies.
    pub fn new(topology: Topology, seed: u64) -> Self {
        topology.validate().expect("topology failed validation");
        let mut rng = SimRng::new(seed);
        let routing = RoutingTable::build(&topology);
        let links = topology
            .edges()
            .map(|e| Link::new(e.id, e.from, e.to, e.spec.clone(), &mut rng))
            .collect();
        Simulator {
            topology,
            routing,
            links,
            apps: HashMap::new(),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            rng,
            trace: Trace::default(),
            next_timer_ids: HashMap::new(),
            started: false,
            stats: SimStats::default(),
        }
    }

    /// Install an application on a node.  The application's `on_start` is
    /// scheduled at the current virtual time.
    pub fn install(&mut self, node: NodeId, app: Box<dyn Application>) {
        assert!(
            self.topology.node(node).is_some(),
            "cannot install application on unknown node {node}"
        );
        self.apps.insert(node, app);
        self.next_timer_ids.entry(node).or_insert(0);
        if self.started {
            self.queue.push(self.now, EventKind::Start { node });
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The static topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The routing table computed from the topology.
    pub fn routing(&self) -> &RoutingTable {
        &self.routing
    }

    /// The trace collected so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Engine counters.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Per-link statistics, keyed by link id.
    pub fn link_stats(&self, id: LinkId) -> Option<&crate::link::LinkStats> {
        self.links.get(id.0).map(|l| l.stats())
    }

    /// The *current* specification of a link (reflecting any applied
    /// runtime changes), unlike `topology()` which keeps the original.
    pub fn link_spec(&self, id: LinkId) -> Option<&crate::link::LinkSpec> {
        self.links.get(id.0).map(|l| &l.spec)
    }

    /// Schedule a link mutation to take effect at virtual time `at`.
    pub fn schedule_link_change(&mut self, at: SimTime, link: LinkId, change: LinkChange) {
        self.queue.push(at, EventKind::LinkChange { link, change });
    }

    /// Schedule every event of a time-varying scenario (see
    /// [`crate::dynamics`]).
    pub fn apply_scenario(&mut self, scenario: &DynamicScenario) {
        for event in &scenario.events {
            self.schedule_link_change(event.at, event.link, event.change.clone());
        }
    }

    /// Apply a link mutation immediately, recording a trace note
    /// (`link-change:lN` with the new bandwidth as value) so experiment
    /// drivers can line decisions up against the schedule.
    fn apply_link_change(&mut self, link: LinkId, change: &LinkChange) {
        let Some(l) = self.links.get_mut(link.0) else {
            return;
        };
        l.apply_change(change, &mut self.rng);
        self.stats.link_changes += 1;
        let from = l.from;
        let bandwidth = l.spec.bandwidth_bps;
        self.trace.push(crate::trace::TraceEvent {
            at: self.now,
            node: from,
            kind: crate::trace::TraceKind::Note {
                label: format!("link-change:{link}"),
                value: bandwidth,
            },
        });
    }

    /// Take a mutable reference to an installed application, downcast by the
    /// caller.  Primarily used by experiment drivers to extract results after
    /// the run; returns `None` if no application is installed on the node.
    pub fn app_mut(&mut self, node: NodeId) -> Option<&mut Box<dyn Application>> {
        self.apps.get_mut(&node)
    }

    /// Remove and return the application installed on a node.
    pub fn take_app(&mut self, node: NodeId) -> Option<Box<dyn Application>> {
        self.apps.remove(&node)
    }

    fn schedule_starts(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let mut nodes: Vec<NodeId> = self.apps.keys().copied().collect();
        nodes.sort();
        for node in nodes {
            self.queue.push(self.now, EventKind::Start { node });
        }
    }

    /// Run until the queue drains or `deadline` is reached, whichever comes
    /// first.  Returns the time at which execution stopped.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        self.schedule_starts();
        while let Some(at) = self.queue.peek_time() {
            if at > deadline {
                break;
            }
            let event = self.queue.pop().expect("peeked event must exist");
            self.now = event.at;
            self.stats.events_processed += 1;
            match event.kind {
                EventKind::Start { node } => self.dispatch(node, Dispatch::Start),
                EventKind::Timer { node, timer_id } => {
                    self.dispatch(node, Dispatch::Timer(timer_id))
                }
                EventKind::DatagramArrival { node, datagram, .. } => {
                    self.handle_arrival(node, datagram)
                }
                EventKind::LinkChange { link, change } => self.apply_link_change(link, &change),
            }
        }
        // If events remain beyond the deadline, the clock advances to the
        // deadline; if the queue drained first, it stays at the last event.
        if self.queue.peek_time().is_some() {
            self.now = deadline;
        }
        self.now
    }

    /// Run until the event queue is completely empty (no deadline).
    pub fn run_to_completion(&mut self) -> SimTime {
        self.run_until(SimTime::from_secs(f64::MAX / 4.0))
    }

    fn handle_arrival(&mut self, node: NodeId, datagram: Datagram) {
        if datagram.dst == node {
            self.stats.datagrams_delivered += 1;
            self.dispatch(node, Dispatch::Datagram(datagram));
        } else {
            // Forwarding hop: push onto the next link toward the destination.
            self.forward(node, datagram);
        }
    }

    fn forward(&mut self, at: NodeId, datagram: Datagram) {
        let dst = datagram.dst;
        let link_id = match self.routing.next_hop(at, dst) {
            Some(l) => l,
            None => {
                self.stats.datagrams_unroutable += 1;
                return;
            }
        };
        let wire = datagram.payload.wire_size();
        let link = &mut self.links[link_id.0];
        match link.offer(self.now, wire, &mut self.rng) {
            LinkOutcome::Deliver(arrival) => {
                let next_node = link.to;
                self.queue.push(
                    arrival,
                    EventKind::DatagramArrival {
                        node: next_node,
                        datagram,
                        via: Some(link_id),
                    },
                );
            }
            LinkOutcome::RandomLoss | LinkOutcome::QueueDrop => {
                self.stats.datagrams_dropped += 1;
            }
        }
    }

    fn dispatch(&mut self, node: NodeId, what: Dispatch) {
        let mut app = match self.apps.remove(&node) {
            Some(a) => a,
            None => return,
        };
        let next_timer = self.next_timer_ids.get(&node).copied().unwrap_or(0);
        let randoms: Vec<f64> = (0..RANDOMS_PER_CALLBACK)
            .map(|_| self.rng.uniform())
            .collect();
        let mut ctx = Context::new(node, self.now, next_timer, randoms);
        match what {
            Dispatch::Start => app.on_start(&mut ctx),
            Dispatch::Timer(id) => app.on_timer(&mut ctx, id),
            Dispatch::Datagram(dg) => app.on_datagram(&mut ctx, dg),
        }
        self.next_timer_ids.insert(node, ctx.next_timer_id());
        // Apply side effects.
        let sends = std::mem::take(&mut ctx.sends);
        let timers = std::mem::take(&mut ctx.timers);
        let traces = std::mem::take(&mut ctx.traces);
        for mut tr in traces {
            tr.at = self.now;
            tr.node = node;
            self.trace.push(tr);
        }
        for t in timers {
            self.queue.push(
                self.now + t.delay,
                EventKind::Timer {
                    node,
                    timer_id: t.timer_id,
                },
            );
        }
        for s in sends {
            self.stats.datagrams_sent += 1;
            let dg = Datagram {
                src: node,
                dst: s.dst,
                sent_at: self.now,
                payload: s.payload,
            };
            if s.dst == node {
                // Loopback: deliver immediately without touching any link.
                self.queue.push(
                    self.now,
                    EventKind::DatagramArrival {
                        node,
                        datagram: dg,
                        via: None,
                    },
                );
            } else {
                self.forward(node, dg);
            }
        }
        self.apps.insert(node, app);
    }

    /// Convenience: send a datagram "from the outside" (not from an
    /// application callback), e.g. to kick off a scenario.
    pub fn inject(&mut self, src: NodeId, dst: NodeId, payload: Payload) {
        self.stats.datagrams_sent += 1;
        let dg = Datagram {
            src,
            dst,
            sent_at: self.now,
            payload,
        };
        self.forward(src, dg);
    }
}

enum Dispatch {
    Start,
    Timer(u64),
    Datagram(Datagram),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;
    use crate::loss::LossModel;
    use crate::node::NodeSpec;
    use crate::trace::{TraceEvent, TraceKind};
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Simple application that sends `count` datagrams to a peer at start.
    struct Blaster {
        dst: NodeId,
        count: u32,
        size: usize,
    }
    impl Application for Blaster {
        fn on_start(&mut self, ctx: &mut Context) {
            for i in 0..self.count {
                ctx.send(self.dst, Payload::sized(1, 1, i as u64, self.size));
            }
        }
    }

    /// Records deliveries into a shared vector.
    struct Sink {
        seen: Rc<RefCell<Vec<(u64, SimTime)>>>,
    }
    impl Application for Sink {
        fn on_datagram(&mut self, ctx: &mut Context, dg: Datagram) {
            self.seen.borrow_mut().push((dg.payload.seq, ctx.now()));
            ctx.trace(TraceEvent::new(TraceKind::Note {
                label: "rx".into(),
                value: dg.payload.seq as f64,
            }));
        }
    }

    fn two_node_topo(bw_mbps: f64, delay: f64) -> (Topology, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node(NodeSpec::workstation("a", 1.0));
        let b = t.add_node(NodeSpec::workstation("b", 1.0));
        t.connect(a, b, LinkSpec::from_mbps(bw_mbps, delay));
        (t, a, b)
    }

    #[test]
    fn datagrams_arrive_in_order_with_expected_latency() {
        let (topo, a, b) = two_node_topo(8.0, 0.05); // 1 MB/s, 50 ms
        let mut sim = Simulator::new(topo, 1);
        let seen = Rc::new(RefCell::new(Vec::new()));
        sim.install(
            a,
            Box::new(Blaster {
                dst: b,
                count: 3,
                size: 958,
            }),
        );
        sim.install(b, Box::new(Sink { seen: seen.clone() }));
        sim.run_until(SimTime::from_secs(10.0));
        let seen = seen.borrow();
        assert_eq!(seen.len(), 3);
        // In-order delivery.
        assert!(seen.windows(2).all(|w| w[0].0 < w[1].0));
        // First datagram: 1000 wire bytes at 1 MB/s = 1 ms + 50 ms.
        assert!((seen[0].1.as_secs() - 0.051).abs() < 1e-6);
        // Subsequent ones serialize behind it.
        assert!((seen[1].1.as_secs() - 0.052).abs() < 1e-6);
        assert_eq!(sim.stats().datagrams_delivered, 3);
        assert_eq!(sim.stats().datagrams_dropped, 0);
        assert_eq!(sim.trace().len(), 3);
    }

    #[test]
    fn multi_hop_forwarding_works() {
        let mut t = Topology::new();
        let a = t.add_node(NodeSpec::workstation("a", 1.0));
        let b = t.add_node(NodeSpec::workstation("b", 1.0));
        let c = t.add_node(NodeSpec::workstation("c", 1.0));
        t.connect(a, b, LinkSpec::from_mbps(100.0, 0.01));
        t.connect(b, c, LinkSpec::from_mbps(100.0, 0.02));
        let mut sim = Simulator::new(t, 3);
        let seen = Rc::new(RefCell::new(Vec::new()));
        sim.install(
            a,
            Box::new(Blaster {
                dst: c,
                count: 1,
                size: 1000,
            }),
        );
        sim.install(c, Box::new(Sink { seen: seen.clone() }));
        sim.run_until(SimTime::from_secs(1.0));
        let seen = seen.borrow();
        assert_eq!(seen.len(), 1);
        // Two hops: > 30 ms propagation in total.
        assert!(seen[0].1.as_secs() > 0.03);
        assert_eq!(sim.stats().datagrams_delivered, 1);
    }

    #[test]
    fn lossy_link_drops_are_counted() {
        let mut t = Topology::new();
        let a = t.add_node(NodeSpec::workstation("a", 1.0));
        let b = t.add_node(NodeSpec::workstation("b", 1.0));
        t.connect(
            a,
            b,
            LinkSpec::from_mbps(100.0, 0.001).with_loss(LossModel::Bernoulli { p: 0.5 }),
        );
        let mut sim = Simulator::new(t, 11);
        let seen = Rc::new(RefCell::new(Vec::new()));
        sim.install(
            a,
            Box::new(Blaster {
                dst: b,
                count: 1000,
                size: 100,
            }),
        );
        sim.install(b, Box::new(Sink { seen: seen.clone() }));
        sim.run_until(SimTime::from_secs(60.0));
        let delivered = seen.borrow().len();
        assert!(delivered > 300 && delivered < 700, "delivered {delivered}");
        assert_eq!(
            sim.stats().datagrams_dropped + sim.stats().datagrams_delivered,
            1000
        );
    }

    #[test]
    fn unroutable_datagrams_are_counted() {
        let mut t = Topology::new();
        let a = t.add_node(NodeSpec::workstation("a", 1.0));
        let b = t.add_node(NodeSpec::workstation("b", 1.0));
        let _iso = t.add_node(NodeSpec::workstation("iso", 1.0));
        t.connect(a, b, LinkSpec::from_mbps(100.0, 0.001));
        let mut sim = Simulator::new(t, 1);
        sim.install(
            a,
            Box::new(Blaster {
                dst: NodeId(2),
                count: 1,
                size: 10,
            }),
        );
        sim.run_until(SimTime::from_secs(1.0));
        assert_eq!(sim.stats().datagrams_unroutable, 1);
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerApp {
            fired: Rc<RefCell<Vec<u64>>>,
        }
        impl Application for TimerApp {
            fn on_start(&mut self, ctx: &mut Context) {
                ctx.set_timer(SimTime::from_millis(20.0));
                ctx.set_timer(SimTime::from_millis(10.0));
                ctx.set_timer(SimTime::from_millis(30.0));
            }
            fn on_timer(&mut self, _ctx: &mut Context, timer_id: u64) {
                self.fired.borrow_mut().push(timer_id);
            }
        }
        let (topo, a, _) = two_node_topo(10.0, 0.01);
        let mut sim = Simulator::new(topo, 1);
        let fired = Rc::new(RefCell::new(Vec::new()));
        sim.install(
            a,
            Box::new(TimerApp {
                fired: fired.clone(),
            }),
        );
        sim.run_until(SimTime::from_secs(1.0));
        // Timer 1 was set with the shortest delay, so it fires first.
        assert_eq!(*fired.borrow(), vec![1, 0, 2]);
    }

    #[test]
    fn identical_seeds_reproduce_identical_runs() {
        let run = |seed: u64| {
            let mut t = Topology::new();
            let a = t.add_node(NodeSpec::workstation("a", 1.0));
            let b = t.add_node(NodeSpec::workstation("b", 1.0));
            t.connect(
                a,
                b,
                LinkSpec::from_mbps(10.0, 0.01).with_loss(LossModel::Bernoulli { p: 0.2 }),
            );
            let mut sim = Simulator::new(t, seed);
            let seen = Rc::new(RefCell::new(Vec::new()));
            sim.install(
                a,
                Box::new(Blaster {
                    dst: b,
                    count: 200,
                    size: 500,
                }),
            );
            sim.install(b, Box::new(Sink { seen: seen.clone() }));
            sim.run_until(SimTime::from_secs(30.0));
            let v: Vec<u64> = seen.borrow().iter().map(|(s, _)| *s).collect();
            v
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn loopback_sends_deliver_locally() {
        struct SelfSender {
            got: Rc<RefCell<u32>>,
        }
        impl Application for SelfSender {
            fn on_start(&mut self, ctx: &mut Context) {
                let me = ctx.node_id();
                ctx.send(me, Payload::opaque(10));
            }
            fn on_datagram(&mut self, _ctx: &mut Context, _dg: Datagram) {
                *self.got.borrow_mut() += 1;
            }
        }
        let (topo, a, _) = two_node_topo(10.0, 0.01);
        let mut sim = Simulator::new(topo, 1);
        let got = Rc::new(RefCell::new(0));
        sim.install(a, Box::new(SelfSender { got: got.clone() }));
        sim.run_until(SimTime::from_secs(1.0));
        assert_eq!(*got.borrow(), 1);
    }

    #[test]
    fn inject_kicks_off_delivery_without_sender_app() {
        let (topo, a, b) = two_node_topo(100.0, 0.005);
        let mut sim = Simulator::new(topo, 1);
        let seen = Rc::new(RefCell::new(Vec::new()));
        sim.install(b, Box::new(Sink { seen: seen.clone() }));
        sim.run_until(SimTime::from_millis(1.0));
        sim.inject(a, b, Payload::opaque(100));
        sim.run_until(SimTime::from_secs(1.0));
        assert_eq!(seen.borrow().len(), 1);
    }

    #[test]
    fn scheduled_bandwidth_drop_changes_transfer_times_mid_simulation() {
        use crate::dynamics::LinkChange;
        // 1 MB/s link: a 100 kB datagram serializes in 0.1 s.  After the
        // scheduled drop to 10 % the same datagram takes 1.0 s.
        let (topo, a, b) = two_node_topo(8.0, 0.0);
        let mut sim = Simulator::new(topo, 1);
        let seen = Rc::new(RefCell::new(Vec::new()));
        sim.install(b, Box::new(Sink { seen: seen.clone() }));
        sim.schedule_link_change(
            SimTime::from_secs(1.0),
            LinkId(0),
            LinkChange::ScaleBandwidth { factor: 0.1 },
        );
        sim.run_until(SimTime::from_millis(1.0));
        let t0 = sim.now().as_secs();
        sim.inject(a, b, Payload::sized(1, 1, 0, 100_000));
        sim.run_until(SimTime::from_secs(2.0));
        // The clock sits at the last processed event; record the actual
        // injection time of the post-drop datagram.
        let t1 = sim.now().as_secs();
        sim.inject(a, b, Payload::sized(1, 1, 1, 100_000));
        sim.run_until(SimTime::from_secs(10.0));
        let seen = seen.borrow();
        assert_eq!(seen.len(), 2);
        let before = seen[0].1.as_secs() - t0;
        let after = seen[1].1.as_secs() - t1;
        // Wire size adds a small header, so allow a per-mille of slack.
        assert!((before - 0.1).abs() < 1e-3, "pre-drop transfer {before}");
        assert!((after - 1.0).abs() < 1e-2, "post-drop transfer {after}");
        assert_eq!(sim.stats().link_changes, 1);
        // The change left a trace note and restored specs stay queryable.
        assert!(sim.trace().events.iter().any(
            |e| matches!(&e.kind, TraceKind::Note { label, .. } if label == "link-change:l0")
        ));
        sim.schedule_link_change(SimTime::from_secs(10.5), LinkId(0), LinkChange::Restore);
        sim.run_until(SimTime::from_secs(11.0));
        assert!((sim.link_spec(LinkId(0)).unwrap().bandwidth_bps - 1e6).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn installing_on_unknown_node_panics() {
        let (topo, ..) = two_node_topo(10.0, 0.01);
        let mut sim = Simulator::new(topo, 1);
        sim.install(
            NodeId(99),
            Box::new(Blaster {
                dst: NodeId(0),
                count: 0,
                size: 0,
            }),
        );
    }
}
