//! Trace records emitted by applications and collected by the engine.
//!
//! The experiment harness (Fig. 9 / Fig. 10 reproduction) reads these records
//! to compute end-to-end delays, goodput time series, and convergence
//! metrics without having to thread bespoke channels through every
//! application.

use crate::node::NodeId;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A single trace record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Virtual time at which the record was emitted (filled in by the engine).
    pub at: SimTime,
    /// Node that emitted the record (filled in by the engine).
    pub node: NodeId,
    /// Structured payload.
    pub kind: TraceKind,
}

/// The payload of a trace record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceKind {
    /// A transport flow reported an instantaneous goodput sample (bytes/s).
    Goodput {
        /// Flow identifier.
        flow: u64,
        /// Goodput sample in bytes per second.
        bytes_per_sec: f64,
    },
    /// A complete application-level message finished arriving.
    MessageDelivered {
        /// Flow identifier.
        flow: u64,
        /// Message size in bytes.
        bytes: usize,
        /// End-to-end latency of the message, seconds.
        latency: f64,
    },
    /// A visualization stage finished on this node.
    StageCompleted {
        /// Human-readable stage name (e.g. "isosurface").
        stage: String,
        /// Processing time, seconds.
        elapsed: f64,
        /// Output size in bytes handed to the next stage.
        output_bytes: usize,
    },
    /// An end-to-end steering iteration completed (image delivered to the
    /// client).
    IterationCompleted {
        /// Iteration (simulation cycle) number.
        iteration: u64,
        /// Total end-to-end delay for this iteration, seconds.
        end_to_end_delay: f64,
    },
    /// Free-form annotation.
    Note {
        /// Arbitrary label.
        label: String,
        /// Arbitrary value.
        value: f64,
    },
}

impl TraceEvent {
    /// Create a record with placeholder time/node; the engine overwrites both
    /// when the record is collected.
    pub fn new(kind: TraceKind) -> Self {
        TraceEvent {
            at: SimTime::ZERO,
            node: NodeId(0),
            kind,
        }
    }
}

/// A collected trace with query helpers.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// All records in emission order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Append a record.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All goodput samples for a flow, as `(time_secs, bytes_per_sec)`.
    pub fn goodput_series(&self, flow_id: u64) -> Vec<(f64, f64)> {
        self.events
            .iter()
            .filter_map(|e| match &e.kind {
                TraceKind::Goodput {
                    flow,
                    bytes_per_sec,
                } if *flow == flow_id => Some((e.at.as_secs(), *bytes_per_sec)),
                _ => None,
            })
            .collect()
    }

    /// All completed-iteration delays in order.
    pub fn iteration_delays(&self) -> Vec<f64> {
        self.events
            .iter()
            .filter_map(|e| match &e.kind {
                TraceKind::IterationCompleted {
                    end_to_end_delay, ..
                } => Some(*end_to_end_delay),
                _ => None,
            })
            .collect()
    }

    /// All message deliveries for a flow, as `(bytes, latency_secs)`.
    pub fn message_deliveries(&self, flow_id: u64) -> Vec<(usize, f64)> {
        self.events
            .iter()
            .filter_map(|e| match &e.kind {
                TraceKind::MessageDelivered {
                    flow,
                    bytes,
                    latency,
                } if *flow == flow_id => Some((*bytes, *latency)),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_queries_filter_by_kind_and_flow() {
        let mut t = Trace::default();
        assert!(t.is_empty());
        t.push(TraceEvent {
            at: SimTime::from_secs(1.0),
            node: NodeId(0),
            kind: TraceKind::Goodput {
                flow: 7,
                bytes_per_sec: 1000.0,
            },
        });
        t.push(TraceEvent {
            at: SimTime::from_secs(2.0),
            node: NodeId(0),
            kind: TraceKind::Goodput {
                flow: 8,
                bytes_per_sec: 2000.0,
            },
        });
        t.push(TraceEvent {
            at: SimTime::from_secs(3.0),
            node: NodeId(1),
            kind: TraceKind::IterationCompleted {
                iteration: 0,
                end_to_end_delay: 4.5,
            },
        });
        t.push(TraceEvent {
            at: SimTime::from_secs(3.5),
            node: NodeId(1),
            kind: TraceKind::MessageDelivered {
                flow: 7,
                bytes: 4096,
                latency: 0.25,
            },
        });
        assert_eq!(t.len(), 4);
        assert_eq!(t.goodput_series(7), vec![(1.0, 1000.0)]);
        assert_eq!(t.goodput_series(9), vec![]);
        assert_eq!(t.iteration_delays(), vec![4.5]);
        assert_eq!(t.message_deliveries(7), vec![(4096, 0.25)]);
    }

    #[test]
    fn new_event_has_placeholder_origin() {
        let e = TraceEvent::new(TraceKind::Note {
            label: "x".into(),
            value: 1.0,
        });
        assert_eq!(e.at, SimTime::ZERO);
        assert_eq!(e.node, NodeId(0));
    }
}
