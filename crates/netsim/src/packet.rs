//! Datagrams exchanged between applications.
//!
//! The transport protocols in `ricsa-transport` and the framework messages in
//! `ricsa-core` are both carried as [`Datagram`]s.  Payloads carry a small
//! typed header (`kind`, `seq`, `flow`) plus an opaque size; the simulator
//! charges serialization delay for the *size*, and applications interpret the
//! header.  Actual simulation bytes are optional (`data`) so that large
//! dataset transfers do not require materializing hundreds of megabytes.

use crate::node::NodeId;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// UDP-like maximum datagram payload used by the transport layer, in bytes.
pub const DEFAULT_MTU: usize = 1400;

/// Application-level payload carried by a datagram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Payload {
    /// Application-defined message kind tag.
    pub kind: u16,
    /// Flow identifier so multiple transport flows can share a node.
    pub flow: u64,
    /// Sequence number within the flow (datagram or ACK sequence).
    pub seq: u64,
    /// Nominal size in bytes (what the network charges for).
    pub size: usize,
    /// Optional inline bytes for small control messages.
    pub data: Vec<u8>,
}

impl Payload {
    /// An opaque payload of the given size with no inline data.
    pub fn opaque(size: usize) -> Self {
        Payload {
            kind: 0,
            flow: 0,
            seq: 0,
            size,
            data: Vec::new(),
        }
    }

    /// A payload carrying inline bytes; the nominal size is the data length.
    pub fn with_data(kind: u16, flow: u64, seq: u64, data: Vec<u8>) -> Self {
        let size = data.len();
        Payload {
            kind,
            flow,
            seq,
            size,
            data,
        }
    }

    /// A sized payload with header fields but no inline data (bulk transfer).
    pub fn sized(kind: u16, flow: u64, seq: u64, size: usize) -> Self {
        Payload {
            kind,
            flow,
            seq,
            size,
            data: Vec::new(),
        }
    }

    /// Total bytes charged on the wire: nominal size plus a small header.
    pub fn wire_size(&self) -> usize {
        self.size + HEADER_OVERHEAD
    }
}

/// Per-datagram header overhead charged by the simulator (IP + UDP + app
/// header), in bytes.
pub const HEADER_OVERHEAD: usize = 42;

/// A datagram in flight or delivered to an application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Datagram {
    /// Originating node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Time the datagram was handed to the network by the sender.
    pub sent_at: SimTime,
    /// Payload.
    pub payload: Payload,
}

impl Datagram {
    /// One-way delay experienced by this datagram if delivered at `now`.
    pub fn delay_at(&self, now: SimTime) -> SimTime {
        now.saturating_sub(self.sent_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opaque_payload_has_size_only() {
        let p = Payload::opaque(1200);
        assert_eq!(p.size, 1200);
        assert!(p.data.is_empty());
        assert_eq!(p.wire_size(), 1200 + HEADER_OVERHEAD);
    }

    #[test]
    fn with_data_sets_size_from_data() {
        let p = Payload::with_data(3, 9, 42, vec![1, 2, 3, 4]);
        assert_eq!(p.size, 4);
        assert_eq!(p.kind, 3);
        assert_eq!(p.flow, 9);
        assert_eq!(p.seq, 42);
    }

    #[test]
    fn datagram_delay() {
        let d = Datagram {
            src: NodeId(0),
            dst: NodeId(1),
            sent_at: SimTime::from_secs(1.0),
            payload: Payload::opaque(100),
        };
        assert_eq!(d.delay_at(SimTime::from_secs(1.25)).as_millis(), 250.0);
        assert_eq!(d.delay_at(SimTime::from_secs(0.5)), SimTime::ZERO);
    }
}
