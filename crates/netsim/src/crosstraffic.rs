//! Cross-traffic processes.
//!
//! On real wide-area paths the bandwidth available to a flow fluctuates with
//! competing traffic; this is what makes throughput "random" in the paper's
//! Section 4.3 and what the Robbins–Monro stabilizer of Section 3 must cope
//! with.  A [`CrossTraffic`] process maps virtual time to the fraction of the
//! link's raw bandwidth that competing traffic currently consumes, so the
//! effective bandwidth seen by the simulated flow is `raw * (1 - load(t))`.

use crate::rng::SimRng;
use serde::{Deserialize, Serialize};

/// A time-varying cross-traffic load model for one link direction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum CrossTraffic {
    /// No competing traffic: the flow sees the raw link bandwidth.
    #[default]
    None,
    /// A constant fraction of the link consumed by background traffic.
    Constant {
        /// Fraction of the link consumed, in `[0, 1)`.
        load: f64,
    },
    /// A two-state Markov-modulated on/off process: background traffic
    /// alternates between a low-load and a high-load state with
    /// exponentially distributed holding times.
    OnOff {
        /// Load during the quiet state, in `[0, 1)`.
        low_load: f64,
        /// Load during the busy state, in `[0, 1)`.
        high_load: f64,
        /// Mean holding time of the quiet state, seconds.
        mean_low_duration: f64,
        /// Mean holding time of the busy state, seconds.
        mean_high_duration: f64,
    },
    /// Sinusoidally varying load (diurnal-style slow variation), useful for
    /// testing adaptation to smooth drifts.
    Sinusoidal {
        /// Mean load, in `[0, 1)`.
        mean_load: f64,
        /// Peak deviation from the mean.
        amplitude: f64,
        /// Oscillation period, seconds.
        period: f64,
    },
}

impl CrossTraffic {
    /// Create the runtime state for this process.
    pub fn instantiate(&self, rng: &mut SimRng) -> CrossTrafficState {
        let mut state = CrossTrafficState {
            model: self.clone(),
            in_high_state: false,
            next_transition: 0.0,
            rng: rng.fork(0xC0FF),
        };
        if let CrossTraffic::OnOff {
            mean_low_duration, ..
        } = self
        {
            state.next_transition = state.rng.exponential(*mean_low_duration);
        }
        state
    }

    /// The long-run mean load of this process.
    pub fn mean_load(&self) -> f64 {
        match *self {
            CrossTraffic::None => 0.0,
            CrossTraffic::Constant { load } => clamp_load(load),
            CrossTraffic::OnOff {
                low_load,
                high_load,
                mean_low_duration,
                mean_high_duration,
            } => {
                let total = mean_low_duration + mean_high_duration;
                if total <= 0.0 {
                    return clamp_load(low_load);
                }
                clamp_load(
                    (clamp_load(low_load) * mean_low_duration
                        + clamp_load(high_load) * mean_high_duration)
                        / total,
                )
            }
            CrossTraffic::Sinusoidal { mean_load, .. } => clamp_load(mean_load),
        }
    }
}

fn clamp_load(l: f64) -> f64 {
    l.clamp(0.0, 0.99)
}

/// Mutable state of an instantiated cross-traffic process.
#[derive(Debug, Clone)]
pub struct CrossTrafficState {
    model: CrossTraffic,
    in_high_state: bool,
    next_transition: f64,
    rng: SimRng,
}

impl CrossTrafficState {
    /// The background load at virtual time `now` (seconds), in `[0, 0.99]`.
    ///
    /// For the Markov on/off process the state machine is advanced lazily up
    /// to `now`; queries must therefore be made with non-decreasing times
    /// (which the simulator guarantees).
    pub fn load_at(&mut self, now: f64) -> f64 {
        match self.model {
            CrossTraffic::None => 0.0,
            CrossTraffic::Constant { load } => clamp_load(load),
            CrossTraffic::Sinusoidal {
                mean_load,
                amplitude,
                period,
            } => {
                if period <= 0.0 {
                    return clamp_load(mean_load);
                }
                let phase = 2.0 * std::f64::consts::PI * now / period;
                clamp_load(mean_load + amplitude * phase.sin())
            }
            CrossTraffic::OnOff {
                low_load,
                high_load,
                mean_low_duration,
                mean_high_duration,
            } => {
                while now >= self.next_transition {
                    self.in_high_state = !self.in_high_state;
                    let mean = if self.in_high_state {
                        mean_high_duration
                    } else {
                        mean_low_duration
                    };
                    let hold = self.rng.exponential(mean.max(1e-6)).max(1e-6);
                    self.next_transition += hold;
                }
                clamp_load(if self.in_high_state {
                    high_load
                } else {
                    low_load
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_and_constant() {
        let mut rng = SimRng::new(1);
        let mut none = CrossTraffic::None.instantiate(&mut rng);
        assert_eq!(none.load_at(10.0), 0.0);
        let mut c = CrossTraffic::Constant { load: 0.4 }.instantiate(&mut rng);
        assert_eq!(c.load_at(0.0), 0.4);
        assert_eq!(c.load_at(100.0), 0.4);
        // Extreme constant load is clamped below 1 so links never stall.
        let mut full = CrossTraffic::Constant { load: 5.0 }.instantiate(&mut rng);
        assert!(full.load_at(0.0) <= 0.99);
    }

    #[test]
    fn sinusoidal_oscillates_about_mean() {
        let mut rng = SimRng::new(2);
        let model = CrossTraffic::Sinusoidal {
            mean_load: 0.5,
            amplitude: 0.2,
            period: 10.0,
        };
        let mut s = model.instantiate(&mut rng);
        let loads: Vec<f64> = (0..100).map(|i| s.load_at(i as f64 * 0.1)).collect();
        let mean: f64 = loads.iter().sum::<f64>() / loads.len() as f64;
        assert!((mean - 0.5).abs() < 0.05);
        assert!(loads.iter().cloned().fold(0.0_f64, f64::max) > 0.65);
        assert!(loads.iter().cloned().fold(1.0_f64, f64::min) < 0.35);
    }

    #[test]
    fn onoff_time_average_matches_mean() {
        let model = CrossTraffic::OnOff {
            low_load: 0.1,
            high_load: 0.7,
            mean_low_duration: 2.0,
            mean_high_duration: 1.0,
        };
        let expected = model.mean_load();
        assert!((expected - (0.1 * 2.0 + 0.7) / 3.0).abs() < 1e-12);
        let mut rng = SimRng::new(3);
        let mut s = model.instantiate(&mut rng);
        let dt = 0.01;
        let steps = 400_000;
        let mean: f64 = (0..steps).map(|i| s.load_at(i as f64 * dt)).sum::<f64>() / steps as f64;
        assert!((mean - expected).abs() < 0.03, "mean {mean} vs {expected}");
    }

    #[test]
    fn onoff_queries_are_monotone_safe() {
        let model = CrossTraffic::OnOff {
            low_load: 0.0,
            high_load: 0.9,
            mean_low_duration: 0.5,
            mean_high_duration: 0.5,
        };
        let mut rng = SimRng::new(4);
        let mut s = model.instantiate(&mut rng);
        // Repeated queries at the same time must not advance the process.
        let a = s.load_at(1.0);
        let b = s.load_at(1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn mean_load_degenerate() {
        let m = CrossTraffic::OnOff {
            low_load: 0.3,
            high_load: 0.8,
            mean_low_duration: 0.0,
            mean_high_duration: 0.0,
        };
        assert_eq!(m.mean_load(), 0.3);
        let s = CrossTraffic::Sinusoidal {
            mean_load: 0.2,
            amplitude: 0.1,
            period: 0.0,
        };
        assert_eq!(s.mean_load(), 0.2);
    }
}
