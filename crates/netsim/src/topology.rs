//! Topology description: nodes and (directed) links.
//!
//! A [`Topology`] is the static picture of the overlay network: the set of
//! hosts participating in a RICSA deployment and the virtual links between
//! them.  The paper represents it as a graph `G = (V, E)` which "may or may
//! not be a complete graph, depending on whether the node deployment
//! environment is the Internet or a dedicated network".

use crate::link::{LinkId, LinkSpec};
use crate::node::{NodeId, NodeSpec};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A directed edge in the overlay graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Link identifier.
    pub id: LinkId,
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Link parameters.
    pub spec: LinkSpec,
}

/// The static overlay network: hosts plus directed virtual links.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<NodeSpec>,
    edges: Vec<Edge>,
    adjacency: HashMap<NodeId, Vec<LinkId>>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Add a node and return its identifier.
    pub fn add_node(&mut self, spec: NodeSpec) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(spec);
        id
    }

    /// Add a single directed link from `from` to `to`.
    pub fn connect_directed(&mut self, from: NodeId, to: NodeId, spec: LinkSpec) -> LinkId {
        let id = LinkId(self.edges.len());
        self.edges.push(Edge { id, from, to, spec });
        self.adjacency.entry(from).or_default().push(id);
        id
    }

    /// Add a symmetric pair of directed links between `a` and `b`.
    pub fn connect(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> (LinkId, LinkId) {
        let ab = self.connect_directed(a, b, spec.clone());
        let ba = self.connect_directed(b, a, spec);
        (ab, ba)
    }

    /// Add an asymmetric pair of directed links between `a` and `b`.
    pub fn connect_asymmetric(
        &mut self,
        a: NodeId,
        b: NodeId,
        a_to_b: LinkSpec,
        b_to_a: LinkSpec,
    ) -> (LinkId, LinkId) {
        let ab = self.connect_directed(a, b, a_to_b);
        let ba = self.connect_directed(b, a, b_to_a);
        (ab, ba)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Node specification, if the identifier is valid.
    pub fn node(&self, id: NodeId) -> Option<&NodeSpec> {
        self.nodes.get(id.0)
    }

    /// All nodes with their identifiers.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &NodeSpec)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i), n))
    }

    /// Edge description, if the identifier is valid.
    pub fn edge(&self, id: LinkId) -> Option<&Edge> {
        self.edges.get(id.0)
    }

    /// All directed edges.
    pub fn edges(&self) -> impl Iterator<Item = &Edge> {
        self.edges.iter()
    }

    /// Mutable access to one link's specification, used by controllers
    /// maintaining a live network view under a time-varying scenario (see
    /// [`crate::dynamics::apply_event_to_topology`]).
    pub fn edge_spec_mut(&mut self, id: LinkId) -> Option<&mut LinkSpec> {
        self.edges.get_mut(id.0).map(|e| &mut e.spec)
    }

    /// Outgoing links of a node.
    pub fn outgoing(&self, node: NodeId) -> &[LinkId] {
        self.adjacency.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The directed edge from `from` to `to`, if one exists.
    pub fn edge_between(&self, from: NodeId, to: NodeId) -> Option<&Edge> {
        self.outgoing(from)
            .iter()
            .filter_map(|id| self.edge(*id))
            .find(|e| e.to == to)
    }

    /// Find a node by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.name == name).map(NodeId)
    }

    /// Validate all node and link specifications.
    pub fn validate(&self) -> Result<(), String> {
        for (i, n) in self.nodes.iter().enumerate() {
            n.validate().map_err(|e| format!("node {i}: {e}"))?;
        }
        for e in &self.edges {
            if e.from.0 >= self.nodes.len() || e.to.0 >= self.nodes.len() {
                return Err(format!("edge {} references missing node", e.id));
            }
            if e.from == e.to {
                return Err(format!("edge {} is a self loop", e.id));
            }
            e.spec
                .validate()
                .map_err(|err| format!("edge {}: {err}", e.id))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node(NodeSpec::workstation("a", 1.0));
        let b = t.add_node(NodeSpec::workstation("b", 2.0));
        let c = t.add_node(NodeSpec::cluster("c", 8.0, 4));
        t.connect(a, b, LinkSpec::from_mbps(100.0, 0.01));
        t.connect_asymmetric(
            b,
            c,
            LinkSpec::from_mbps(1000.0, 0.002),
            LinkSpec::from_mbps(100.0, 0.002),
        );
        (t, a, b, c)
    }

    #[test]
    fn build_and_query() {
        let (t, a, b, c) = sample();
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.edge_count(), 4);
        assert_eq!(t.node(b).unwrap().compute_power, 2.0);
        assert_eq!(t.outgoing(a).len(), 1);
        assert_eq!(t.outgoing(b).len(), 2);
        assert!(t.edge_between(a, b).is_some());
        assert!(t.edge_between(a, c).is_none());
        assert_eq!(t.node_by_name("c"), Some(c));
        assert_eq!(t.node_by_name("zzz"), None);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn asymmetric_links_have_distinct_specs() {
        let (t, _, b, c) = sample();
        let fwd = t.edge_between(b, c).unwrap();
        let back = t.edge_between(c, b).unwrap();
        assert!(fwd.spec.bandwidth_bps > back.spec.bandwidth_bps);
    }

    #[test]
    fn validation_catches_bad_edges() {
        let mut t = Topology::new();
        let a = t.add_node(NodeSpec::workstation("a", 1.0));
        let b = t.add_node(NodeSpec::workstation("b", 1.0));
        t.connect_directed(a, b, LinkSpec::new(0.0, 0.01));
        assert!(t.validate().is_err());

        let mut t2 = Topology::new();
        let a2 = t2.add_node(NodeSpec::workstation("a", 1.0));
        t2.connect_directed(a2, a2, LinkSpec::new(1e6, 0.01));
        assert!(t2.validate().is_err());
    }

    #[test]
    fn outgoing_of_unknown_node_is_empty() {
        let (t, ..) = sample();
        assert!(t.outgoing(NodeId(99)).is_empty());
        assert!(t.node(NodeId(99)).is_none());
        assert!(t.edge(LinkId(99)).is_none());
    }
}
