//! The discrete-event queue.
//!
//! Events are ordered by virtual time with a monotone sequence number as a
//! tie breaker, which makes event ordering (and therefore every simulation
//! run) fully deterministic.

use crate::dynamics::LinkChange;
use crate::link::LinkId;
use crate::node::NodeId;
use crate::packet::Datagram;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug, Clone)]
pub enum EventKind {
    /// A datagram arrives at a node (either its destination or a forwarding
    /// hop).
    DatagramArrival {
        /// The node where the datagram arrives.
        node: NodeId,
        /// The datagram itself.
        datagram: Datagram,
        /// The link it arrived on (None for loopback deliveries).
        via: Option<LinkId>,
    },
    /// A timer set by an application fires.
    Timer {
        /// The node whose application owns the timer.
        node: NodeId,
        /// The identifier returned by `Context::set_timer`.
        timer_id: u64,
    },
    /// The application on a node should be started.
    Start {
        /// The node to start.
        node: NodeId,
    },
    /// A scheduled link mutation takes effect (time-varying scenarios, see
    /// [`crate::dynamics`]).
    LinkChange {
        /// The directed link being mutated.
        link: LinkId,
        /// The mutation.
        change: LinkChange,
    },
}

/// A scheduled event.
#[derive(Debug, Clone)]
pub struct Event {
    /// When the event fires.
    pub at: SimTime,
    /// Monotone sequence number used to break ties deterministically.
    pub seq: u64,
    /// The event payload.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest event pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic min-priority event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedule an event at `at`.
    pub fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, kind });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(
            SimTime::from_secs(3.0),
            EventKind::Start { node: NodeId(3) },
        );
        q.push(
            SimTime::from_secs(1.0),
            EventKind::Start { node: NodeId(1) },
        );
        q.push(
            SimTime::from_secs(2.0),
            EventKind::Start { node: NodeId(2) },
        );
        let order: Vec<f64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.as_secs())
            .collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.push(
                SimTime::from_secs(1.0),
                EventKind::Timer {
                    node: NodeId(0),
                    timer_id: i,
                },
            );
        }
        let ids: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { timer_id, .. } => timer_id,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert!(q.peek_time().is_none());
        q.push(
            SimTime::from_secs(2.0),
            EventKind::Start { node: NodeId(0) },
        );
        q.push(
            SimTime::from_secs(1.0),
            EventKind::Start { node: NodeId(0) },
        );
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time().unwrap(), SimTime::from_secs(1.0));
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
