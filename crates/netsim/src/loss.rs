//! Packet loss models for simulated links.
//!
//! The transport-stabilization analysis in the paper (Section 3, citing Rao
//! et al.) assumes *random losses*; wide-area paths additionally exhibit
//! bursty (correlated) loss.  Both are provided here: a Bernoulli model and a
//! two-state Gilbert–Elliott model.

use crate::rng::SimRng;
use serde::{Deserialize, Serialize};

/// A per-datagram loss process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum LossModel {
    /// No loss at all.
    #[default]
    None,
    /// Independent (Bernoulli) loss with the given probability per datagram.
    Bernoulli {
        /// Probability that any given datagram is dropped.
        p: f64,
    },
    /// Two-state Gilbert–Elliott bursty loss.
    ///
    /// The channel alternates between a *good* state with loss `p_good` and a
    /// *bad* state with loss `p_bad`; transitions occur per datagram with the
    /// given probabilities.
    GilbertElliott {
        /// Probability of moving good → bad on a datagram.
        p_good_to_bad: f64,
        /// Probability of moving bad → good on a datagram.
        p_bad_to_good: f64,
        /// Loss probability while in the good state.
        p_good: f64,
        /// Loss probability while in the bad state.
        p_bad: f64,
    },
}

impl LossModel {
    /// Create the runtime state for this model.
    pub fn instantiate(&self) -> LossState {
        LossState {
            model: self.clone(),
            in_bad_state: false,
            offered: 0,
            dropped: 0,
        }
    }

    /// Long-run average loss probability implied by the model parameters.
    pub fn steady_state_loss(&self) -> f64 {
        match *self {
            LossModel::None => 0.0,
            LossModel::Bernoulli { p } => p.clamp(0.0, 1.0),
            LossModel::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                p_good,
                p_bad,
            } => {
                let denom = p_good_to_bad + p_bad_to_good;
                if denom <= 0.0 {
                    return p_good.clamp(0.0, 1.0);
                }
                let pi_bad = p_good_to_bad / denom;
                let pi_good = 1.0 - pi_bad;
                (pi_good * p_good + pi_bad * p_bad).clamp(0.0, 1.0)
            }
        }
    }
}

/// Mutable state of an instantiated loss process on one link direction.
#[derive(Debug, Clone)]
pub struct LossState {
    model: LossModel,
    in_bad_state: bool,
    offered: u64,
    dropped: u64,
}

impl LossState {
    /// Sample whether the next datagram is dropped.
    pub fn should_drop(&mut self, rng: &mut SimRng) -> bool {
        self.offered += 1;
        let drop = match self.model {
            LossModel::None => false,
            LossModel::Bernoulli { p } => rng.coin(p),
            LossModel::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                p_good,
                p_bad,
            } => {
                // Transition first, then sample loss in the new state.
                if self.in_bad_state {
                    if rng.coin(p_bad_to_good) {
                        self.in_bad_state = false;
                    }
                } else if rng.coin(p_good_to_bad) {
                    self.in_bad_state = true;
                }
                rng.coin(if self.in_bad_state { p_bad } else { p_good })
            }
        };
        if drop {
            self.dropped += 1;
        }
        drop
    }

    /// Fraction of offered datagrams dropped so far (0 if none offered).
    pub fn observed_loss_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.dropped as f64 / self.offered as f64
        }
    }

    /// Number of datagrams offered to this loss process.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Number of datagrams dropped by this loss process.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_loss_never_drops() {
        let mut s = LossModel::None.instantiate();
        let mut rng = SimRng::new(1);
        assert!(!(0..1000).any(|_| s.should_drop(&mut rng)));
        assert_eq!(s.observed_loss_rate(), 0.0);
    }

    #[test]
    fn bernoulli_matches_rate() {
        let mut s = LossModel::Bernoulli { p: 0.1 }.instantiate();
        let mut rng = SimRng::new(2);
        let n = 50_000;
        let drops = (0..n).filter(|_| s.should_drop(&mut rng)).count();
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
        assert!((s.observed_loss_rate() - rate).abs() < 1e-12);
        assert_eq!(s.offered(), n as u64);
        assert_eq!(s.dropped(), drops as u64);
    }

    #[test]
    fn gilbert_elliott_steady_state() {
        let model = LossModel::GilbertElliott {
            p_good_to_bad: 0.01,
            p_bad_to_good: 0.09,
            p_good: 0.001,
            p_bad: 0.3,
        };
        // pi_bad = 0.1, expected loss = 0.9*0.001 + 0.1*0.3 = 0.0309
        let expected = model.steady_state_loss();
        assert!((expected - 0.0309).abs() < 1e-9);
        let mut s = model.instantiate();
        let mut rng = SimRng::new(3);
        let n = 200_000;
        let drops = (0..n).filter(|_| s.should_drop(&mut rng)).count();
        let rate = drops as f64 / n as f64;
        assert!((rate - expected).abs() < 0.005, "rate {rate} vs {expected}");
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        // With sticky states, consecutive drops should be much more common
        // than under an independent model with the same average rate.
        let model = LossModel::GilbertElliott {
            p_good_to_bad: 0.005,
            p_bad_to_good: 0.05,
            p_good: 0.0,
            p_bad: 0.5,
        };
        let mut s = model.instantiate();
        let mut rng = SimRng::new(4);
        let n = 100_000;
        let outcomes: Vec<bool> = (0..n).map(|_| s.should_drop(&mut rng)).collect();
        let loss_rate = outcomes.iter().filter(|&&d| d).count() as f64 / n as f64;
        let pairs = outcomes.windows(2).filter(|w| w[0] && w[1]).count() as f64;
        let pair_rate = pairs / (n - 1) as f64;
        // Independent losses would give pair_rate ~= loss_rate^2.
        assert!(
            pair_rate > 3.0 * loss_rate * loss_rate,
            "pair_rate {pair_rate}, loss_rate {loss_rate}"
        );
    }

    #[test]
    fn steady_state_degenerate_params() {
        let m = LossModel::GilbertElliott {
            p_good_to_bad: 0.0,
            p_bad_to_good: 0.0,
            p_good: 0.02,
            p_bad: 0.9,
        };
        assert!((m.steady_state_loss() - 0.02).abs() < 1e-12);
    }
}
