//! Network nodes.
//!
//! A node models one of the paper's hosts: a PC-class Linux workstation or a
//! cluster running MPI-parallel visualization modules.  Following the paper's
//! analytical model (Section 4.2) each node carries a single *normalized
//! computing power* `p_i`; the execution time of a module with complexity `c`
//! on data of size `m` is `c·m / p_i`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node inside a [`crate::topology::Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Hardware capabilities relevant to visualization-module placement.
///
/// The paper notes that "some nodes are only capable of executing certain
/// visualization modules" (e.g. rendering requires a graphics card) and that
/// such constraints are handled by feasibility checks in the DP recursion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeCapabilities {
    /// Whether the node has a GPU / graphics card usable for rendering.
    pub has_graphics: bool,
    /// Whether the node is a cluster with MPI-parallel visualization modules.
    pub is_cluster: bool,
    /// Number of parallel worker processes available (1 for a plain PC).
    pub parallel_workers: u32,
}

impl Default for NodeCapabilities {
    fn default() -> Self {
        NodeCapabilities {
            has_graphics: true,
            is_cluster: false,
            parallel_workers: 1,
        }
    }
}

/// Static description of a node used when building a topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Human-readable name (e.g. `"ORNL"`, `"GaTech"`).
    pub name: String,
    /// Normalized computing power `p_i` (larger is faster).
    pub compute_power: f64,
    /// Hardware capabilities.
    pub capabilities: NodeCapabilities,
}

impl NodeSpec {
    /// A PC-class workstation with the given normalized compute power.
    pub fn workstation(name: impl Into<String>, compute_power: f64) -> Self {
        NodeSpec {
            name: name.into(),
            compute_power,
            capabilities: NodeCapabilities::default(),
        }
    }

    /// A cluster node with MPI-parallel visualization modules.
    pub fn cluster(name: impl Into<String>, compute_power: f64, workers: u32) -> Self {
        NodeSpec {
            name: name.into(),
            compute_power,
            capabilities: NodeCapabilities {
                has_graphics: true,
                is_cluster: true,
                parallel_workers: workers.max(1),
            },
        }
    }

    /// A workstation without a graphics card (cannot run rendering modules).
    pub fn headless(name: impl Into<String>, compute_power: f64) -> Self {
        NodeSpec {
            name: name.into(),
            compute_power,
            capabilities: NodeCapabilities {
                has_graphics: false,
                is_cluster: false,
                parallel_workers: 1,
            },
        }
    }

    /// Builder-style override of the graphics capability.
    pub fn with_graphics(mut self, has_graphics: bool) -> Self {
        self.capabilities.has_graphics = has_graphics;
        self
    }

    /// Validate the specification, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("node name must not be empty".into());
        }
        if !(self.compute_power.is_finite() && self.compute_power > 0.0) {
            return Err(format!(
                "node '{}' has non-positive compute power {}",
                self.name, self.compute_power
            ));
        }
        if self.capabilities.parallel_workers == 0 {
            return Err(format!("node '{}' has zero parallel workers", self.name));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workstation_defaults() {
        let n = NodeSpec::workstation("ORNL", 1.5);
        assert_eq!(n.name, "ORNL");
        assert!(n.capabilities.has_graphics);
        assert!(!n.capabilities.is_cluster);
        assert_eq!(n.capabilities.parallel_workers, 1);
        assert!(n.validate().is_ok());
    }

    #[test]
    fn cluster_clamps_workers() {
        let n = NodeSpec::cluster("UT", 8.0, 0);
        assert_eq!(n.capabilities.parallel_workers, 1);
        assert!(n.capabilities.is_cluster);
    }

    #[test]
    fn headless_has_no_graphics() {
        let n = NodeSpec::headless("GaTech", 1.0);
        assert!(!n.capabilities.has_graphics);
        assert!(n.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_specs() {
        assert!(NodeSpec::workstation("", 1.0).validate().is_err());
        assert!(NodeSpec::workstation("x", 0.0).validate().is_err());
        assert!(NodeSpec::workstation("x", f64::NAN).validate().is_err());
        let mut n = NodeSpec::workstation("x", 1.0);
        n.capabilities.parallel_workers = 0;
        assert!(n.validate().is_err());
    }

    #[test]
    fn node_id_display() {
        assert_eq!(format!("{}", NodeId(3)), "n3");
    }
}
