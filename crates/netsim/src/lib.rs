//! Discrete-event wide-area network simulator.
//!
//! This crate is the substrate that stands in for the six-host Internet
//! deployment used in the RICSA paper (Fig. 8).  It provides:
//!
//! * a deterministic discrete-event engine with a virtual clock ([`sim::Simulator`]),
//! * network nodes with a normalized compute power (the paper's `p_i`),
//! * duplex links with bandwidth, propagation delay, bounded queues, random
//!   loss and cross traffic (the paper's `b_{i,j}` and `d_{i,j}`),
//! * an application trait ([`app::Application`]) so that transport protocols
//!   and framework roles can be written as event-driven state machines, and
//! * topology presets mirroring the paper's experimental deployment
//!   ([`presets`]).
//!
//! The simulator is single-threaded and fully deterministic for a given seed,
//! which keeps every experiment in the benchmark harness reproducible.
//!
//! # Example
//!
//! ```
//! use ricsa_netsim::prelude::*;
//!
//! // Two hosts connected by a 100 Mbit/s, 10 ms link.
//! let mut topo = Topology::new();
//! let a = topo.add_node(NodeSpec::workstation("a", 1.0));
//! let b = topo.add_node(NodeSpec::workstation("b", 1.0));
//! topo.connect(a, b, LinkSpec::new(100e6 / 8.0, 0.010));
//!
//! let mut sim = Simulator::new(topo, 7);
//! // Send one datagram from a to b and count deliveries at b.
//! struct Sender;
//! impl Application for Sender {
//!     fn on_start(&mut self, ctx: &mut Context) {
//!         ctx.send(NodeId(1), Payload::opaque(1200));
//!     }
//! }
//! #[derive(Default)]
//! struct Counter(u32);
//! impl Application for Counter {
//!     fn on_datagram(&mut self, _ctx: &mut Context, _dg: Datagram) {
//!         self.0 += 1;
//!     }
//! }
//! sim.install(a, Box::new(Sender));
//! sim.install(b, Box::new(Counter::default()));
//! sim.run_until(SimTime::from_secs(1.0));
//! ```

#![deny(missing_docs)]

pub mod app;
pub mod crosstraffic;
pub mod dynamics;
pub mod event;
pub mod generators;
pub mod link;
pub mod loss;
pub mod node;
pub mod packet;
pub mod presets;
pub mod rng;
pub mod routing;
pub mod sim;
pub mod time;
pub mod topology;
pub mod trace;

/// Convenience re-exports of the most commonly used simulator types.
pub mod prelude {
    pub use crate::app::{Application, Context};
    pub use crate::crosstraffic::CrossTraffic;
    pub use crate::dynamics::{DynamicScenario, LinkChange, LinkEvent, ScheduleParams};
    pub use crate::generators::{GeneratedWan, WanKind};
    pub use crate::link::{LinkId, LinkSpec};
    pub use crate::loss::LossModel;
    pub use crate::node::{NodeId, NodeSpec};
    pub use crate::packet::{Datagram, Payload};
    pub use crate::presets::{fig8_topology, Fig8Site};
    pub use crate::sim::Simulator;
    pub use crate::time::SimTime;
    pub use crate::topology::Topology;
    pub use crate::trace::TraceEvent;
}

pub use app::{Application, Context};
pub use link::{LinkId, LinkSpec};
pub use node::{NodeId, NodeSpec};
pub use packet::{Datagram, Payload};
pub use sim::Simulator;
pub use time::SimTime;
pub use topology::Topology;
