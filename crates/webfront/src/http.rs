//! A high-concurrency HTTP/1.1 server on a fixed worker thread pool.
//!
//! The paper's front end must absorb "heavy traffic" from many browsers at
//! once, so connections are *not* pinned to threads.  A fixed pool of
//! workers multiplexes all live connections through a shared run queue:
//!
//! * **Keep-alive.**  Connections are HTTP/1.1 persistent by default; each
//!   worker visit reads whatever bytes have arrived (sockets are
//!   non-blocking), parses as many complete requests as the buffer holds
//!   (pipelining-safe: unconsumed bytes simply stay buffered), and writes
//!   the responses in order.
//! * **Deferred responses.**  A handler returns an [`Outcome`]: either a
//!   ready [`HttpResponse`] or a `Pending` closure the pool re-polls on
//!   every visit until it produces a response.  This is how `/api/poll`
//!   long-polls hundreds of clients without blocking a worker per client.
//! * **Connection limits.**  Beyond [`HttpServerConfig::max_connections`]
//!   the acceptor answers `503 Service Unavailable` and closes, so overload
//!   degrades crisply instead of exhausting file descriptors.
//! * **Graceful shutdown.**  [`HttpServer::shutdown`] stops the acceptor,
//!   lets workers flush any response that is already computable, closes the
//!   remaining connections, and joins every thread.
//!
//! Scheduling granularity: an idle connection is revisited roughly every
//! [`POLL_INTERVAL`]; that bounds both the long-poll wake-up latency and
//! the CPU burned on idle connections (each worker naps between
//! unproductive visits instead of spinning).

use crate::readiness::{Backend, Reactor, Waker};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often an idle or pending connection is revisited by the pool.  This
/// bounds long-poll wake-up latency from below; it is deliberately a couple
/// of milliseconds — far below a frame interval — so delivery latency is
/// dominated by the publisher, not the scheduler.
pub const POLL_INTERVAL: Duration = Duration::from_millis(2);

/// Maximum accepted header-block size; a connection exceeding it is cut
/// off with `400 Bad Request`.
const MAX_HEADER_BYTES: usize = 16 << 10;

/// Maximum accepted request-body size.
const MAX_BODY_BYTES: usize = 16 << 20;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method (`GET`, `POST`, ...).
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// HTTP version from the request line (`HTTP/1.1`).
    pub version: String,
    /// Decoded query-string parameters.
    pub query: HashMap<String, String>,
    /// Header fields, lower-cased names.
    pub headers: HashMap<String, String>,
    /// Request body.
    pub body: Vec<u8>,
    /// Server-assigned identifier of the connection the request arrived
    /// on (`0` for requests not dispatched from a live connection, e.g.
    /// in unit tests).  Ids are unique for the life of the process, never
    /// reused across accepted connections.  Routes use this to tie
    /// delivery acknowledgements to connection identity: a long-poll
    /// response is only *known* delivered when the client's next request
    /// arrives on the same connection (see the hub's staged cursors).
    pub connection: u64,
}

/// Result of attempting to parse a request from buffered bytes.
#[derive(Debug)]
pub enum Parse {
    /// A complete request plus the number of buffer bytes it consumed
    /// (request line + headers + body); the remainder of the buffer is the
    /// start of the next pipelined request.
    Complete(Box<HttpRequest>, usize),
    /// The buffer holds only a prefix of a request; read more bytes.
    Partial,
    /// The bytes cannot be a valid request (malformed request line or an
    /// oversized header/body).
    Invalid,
}

impl HttpRequest {
    /// A query parameter by name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.get(name).map(String::as_str)
    }

    /// Whether the connection should stay open after this request:
    /// HTTP/1.1 defaults to keep-alive, anything else to close, and an
    /// explicit `Connection:` header overrides either way.
    pub fn wants_keep_alive(&self) -> bool {
        match self
            .headers
            .get("connection")
            .map(|v| v.to_ascii_lowercase())
        {
            Some(v) if v.contains("close") => false,
            Some(v) if v.contains("keep-alive") => true,
            _ => self.version == "HTTP/1.1",
        }
    }

    /// Incrementally parse one request from the front of `buf`.
    ///
    /// This is the pipelining-safe entry point the connection loop uses: it
    /// never consumes bytes on `Partial`, and on `Complete` it reports
    /// exactly how many bytes belonged to this request so the caller can
    /// drain them and leave any pipelined successor intact.
    pub fn parse_buf(buf: &[u8]) -> Parse {
        let Some(header_end) = find_header_end(buf) else {
            return if buf.len() > MAX_HEADER_BYTES {
                Parse::Invalid
            } else {
                Parse::Partial
            };
        };
        if header_end > MAX_HEADER_BYTES {
            return Parse::Invalid;
        }
        let head = match std::str::from_utf8(&buf[..header_end]) {
            Ok(s) => s,
            Err(_) => return Parse::Invalid,
        };
        let mut lines = head.split('\n').map(|l| l.trim_end_matches('\r'));
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split_whitespace();
        let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
            return Parse::Invalid;
        };
        let version = parts.next().unwrap_or("HTTP/1.0").to_string();
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), parse_query(q)),
            None => (target.to_string(), HashMap::new()),
        };
        let mut headers = HashMap::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            if let Some((name, value)) = line.split_once(':') {
                headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
            }
        }
        // Chunked (or any other) transfer coding is not supported; it must
        // be rejected, not ignored — otherwise the chunked body bytes
        // would be re-parsed as the next pipelined request (framing
        // desync / request-smuggling primitive on keep-alive connections).
        if headers
            .get("transfer-encoding")
            .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
        {
            return Parse::Invalid;
        }
        // An unparseable Content-Length must reject the request, not be
        // read as 0, for the same framing reason.
        let content_length: usize = match headers.get("content-length") {
            Some(v) => match v.parse() {
                Ok(n) => n,
                Err(_) => return Parse::Invalid,
            },
            None => 0,
        };
        if content_length > MAX_BODY_BYTES {
            return Parse::Invalid;
        }
        let body_start = header_end + header_terminator_len(buf, header_end);
        if buf.len() < body_start + content_length {
            return Parse::Partial;
        }
        let body = buf[body_start..body_start + content_length].to_vec();
        Parse::Complete(
            Box::new(HttpRequest {
                method: method.to_string(),
                path,
                version,
                query,
                headers,
                body,
                connection: 0,
            }),
            body_start + content_length,
        )
    }
}

/// Index of the first byte of the blank line terminating the header block
/// (`\r\n\r\n`, tolerating bare `\n\n`), or `None` if it has not arrived.
/// Whichever terminator appears *earliest* wins — a bare-LF request must
/// not be framed by a CRLF sequence occurring later in the buffer (e.g. in
/// a pipelined successor).
fn find_header_end(buf: &[u8]) -> Option<usize> {
    // A valid terminator must sit within MAX_HEADER_BYTES (enforced by the
    // caller), so bound the scan: without this, every Partial re-parse of
    // a multi-megabyte streaming body would rescan the whole buffer.
    let scan = &buf[..buf.len().min(MAX_HEADER_BYTES + 4)];
    let crlf = scan
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 2);
    let lf = scan.windows(2).position(|w| w == b"\n\n").map(|i| i + 1);
    match (crlf, lf) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

/// Length of the terminator starting at `header_end` (2 for `\r\n`, 1 for
/// a bare `\n`).
fn header_terminator_len(buf: &[u8], header_end: usize) -> usize {
    if buf[header_end..].starts_with(b"\r\n") {
        2
    } else {
        1
    }
}

/// Decode an `application/x-www-form-urlencoded` style query string.
pub fn parse_query(query: &str) -> HashMap<String, String> {
    query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (url_decode(k), url_decode(v)),
            None => (url_decode(kv), String::new()),
        })
        .collect()
}

fn url_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).unwrap_or("");
                if let Ok(v) = u8::from_str_radix(hex, 16) {
                    out.push(v);
                    i += 3;
                    continue;
                }
                out.push(b'%');
                i += 1;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// A response body: either bytes owned by this response or a shared
/// reference-counted payload (the hub's encode-once frame cache hands the
/// same `Arc<str>` to every poller instead of re-encoding per client).
#[derive(Debug, Clone)]
pub enum Body {
    /// Bytes owned by this response.
    Owned(Vec<u8>),
    /// A shared payload; cloning the response clones only the `Arc`.
    Shared(Arc<str>),
}

impl Body {
    /// The body bytes, whichever variant holds them.
    pub fn as_bytes(&self) -> &[u8] {
        match self {
            Body::Owned(v) => v,
            Body::Shared(s) => s.as_bytes(),
        }
    }
}

impl PartialEq for Body {
    fn eq(&self, other: &Self) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}
impl Eq for Body {}

/// An HTTP response under construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Content type.
    pub content_type: String,
    /// Body bytes (owned or shared).
    pub body: Body,
}

impl HttpResponse {
    /// A 200 response with the given content type and body.
    pub fn ok(content_type: &str, body: impl Into<Vec<u8>>) -> Self {
        HttpResponse {
            status: 200,
            content_type: content_type.to_string(),
            body: Body::Owned(body.into()),
        }
    }

    /// A JSON response.
    pub fn json(value: &serde_json::Value) -> Self {
        HttpResponse::ok("application/json", value.to_string().into_bytes())
    }

    /// A JSON response over a shared pre-encoded payload (no copy of the
    /// payload is made; every client shares the same allocation).
    pub fn json_shared(payload: Arc<str>) -> Self {
        HttpResponse {
            status: 200,
            content_type: "application/json".into(),
            body: Body::Shared(payload),
        }
    }

    /// A 404 response.
    pub fn not_found() -> Self {
        HttpResponse {
            status: 404,
            content_type: "text/plain".into(),
            body: Body::Owned(b"not found".to_vec()),
        }
    }

    /// A 400 response with a reason.
    pub fn bad_request(reason: &str) -> Self {
        HttpResponse {
            status: 400,
            content_type: "text/plain".into(),
            body: Body::Owned(reason.as_bytes().to_vec()),
        }
    }

    /// A 503 response (connection limit reached).
    pub fn service_unavailable() -> Self {
        HttpResponse {
            status: 503,
            content_type: "text/plain".into(),
            body: Body::Owned(b"server at connection capacity".to_vec()),
        }
    }

    /// Serialize to wire format, advertising whether the connection stays
    /// open afterwards.
    pub fn encode(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out, keep_alive);
        out
    }

    /// Serialize to wire format directly into `out` — the serving path
    /// appends straight into the connection's output buffer, so a large
    /// shared frame payload is copied exactly once (no intermediate
    /// headers+body allocation per response).
    pub fn encode_into(&self, out: &mut Vec<u8>, keep_alive: bool) {
        let reason = match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            503 => "Service Unavailable",
            _ => "Unknown",
        };
        let body = self.body.as_bytes();
        out.extend_from_slice(
            format!(
                "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nAccess-Control-Allow-Origin: *\r\nConnection: {}\r\n\r\n",
                self.status,
                reason,
                self.content_type,
                body.len(),
                if keep_alive { "keep-alive" } else { "close" },
            )
            .as_bytes(),
        );
        out.extend_from_slice(body);
    }
}

/// Read one HTTP response (status line, headers, `Content-Length`-framed
/// body) from a blocking client-side reader — the parsing inverse of
/// [`HttpResponse::encode`].  Returns `(status, wire_bytes, body)` where
/// `wire_bytes` counts the full response (status line + headers + body).
/// Shared by this crate's socket tests, the workspace integration tests
/// and the `webfront_load` generator; the server itself never parses
/// responses.
pub fn read_blocking_response<R: std::io::BufRead>(
    reader: &mut R,
) -> std::io::Result<(u16, u64, Vec<u8>)> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(std::io::Error::new(
            ErrorKind::UnexpectedEof,
            "connection closed before a response",
        ));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let mut wire = status_line.len() as u64;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                ErrorKind::UnexpectedEof,
                "connection closed inside response headers",
            ));
        }
        wire += line.len() as u64;
        if line.trim_end().is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap_or(0);
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    wire += content_length as u64;
    Ok((status, wire, body))
}

/// What a route handler returns.
pub enum Outcome {
    /// The response is ready now.
    Ready(HttpResponse),
    /// The response is not computable yet (a long-poll waiting for the next
    /// frame).  The pool re-invokes the closure on every scheduling visit —
    /// roughly every [`POLL_INTERVAL`] — until it returns `Some`; the
    /// closure owns its own deadline and returns its timeout response when
    /// that passes.  No worker thread blocks while the closure waits.
    Pending(Box<dyn FnMut() -> Option<HttpResponse> + Send>),
}

impl From<HttpResponse> for Outcome {
    fn from(resp: HttpResponse) -> Self {
        Outcome::Ready(resp)
    }
}

/// Sizing and timing knobs for [`HttpServer`].
#[derive(Debug, Clone)]
pub struct HttpServerConfig {
    /// Worker threads multiplexing all connections.  Because long-polls
    /// never block a worker, this needs to cover concurrent *parsing and
    /// writing*, not concurrent clients; a small pool serves hundreds of
    /// keep-alive pollers.
    pub workers: usize,
    /// Accepted-connection ceiling; beyond it new connections get `503`.
    pub max_connections: usize,
    /// Keep-alive idle timeout: a connection with no request in flight and
    /// no bytes arriving for this long is closed.
    pub keep_alive: Duration,
    /// Requests served on one connection before the server closes it
    /// (`0` = unlimited).  A rotation guard against resource pinning.
    pub max_requests_per_connection: u64,
    /// How unproductive connections wait: rotated through the pool
    /// ([`Backend::Pool`], the portable default) or parked in the kernel
    /// until ready ([`Backend::Readiness`]; falls back to the pool at
    /// runtime where epoll is unavailable).
    pub backend: Backend,
}

impl Default for HttpServerConfig {
    fn default() -> Self {
        HttpServerConfig {
            workers: 8,
            max_connections: 1024,
            keep_alive: Duration::from_secs(30),
            max_requests_per_connection: 0,
            backend: Backend::Pool,
        }
    }
}

type Handler = dyn Fn(HttpRequest) -> Outcome + Send + Sync;
type PendingResponse = Box<dyn FnMut() -> Option<HttpResponse> + Send>;

/// Upper bound on response bytes buffered for a slow-reading client; a
/// reader this far behind is not keeping up and is dropped.
const MAX_OUT_BUFFERED: usize = 8 << 20;

/// Upper bound on request bytes buffered per connection: one maximal
/// request plus headroom for pipelined successors.  Enforced even while a
/// long-poll defers dispatch, so a client cannot stream unbounded input
/// into memory behind a pending response.
const MAX_IN_BUFFERED: usize = MAX_BODY_BYTES + MAX_HEADER_BYTES + (64 << 10);

/// Once this much of `Conn::out` has been flushed, the dead prefix is
/// reclaimed (without this, a connection that never fully drains would
/// keep every byte it ever sent allocated).
const OUT_COMPACT_THRESHOLD: usize = 64 << 10;

/// One live connection owned by the run queue (or, transiently, by the
/// worker visiting it, or parked in the readiness reactor).
pub(crate) struct Conn {
    /// Process-unique connection id, stamped into every request dispatched
    /// from this connection ([`HttpRequest::connection`]).
    pub(crate) id: u64,
    pub(crate) stream: TcpStream,
    /// Bytes read but not yet consumed by a complete request.
    buf: Vec<u8>,
    /// Response bytes queued but not yet accepted by the (non-blocking)
    /// socket — a slow reader never blocks a worker, it just accumulates
    /// here up to [`MAX_OUT_BUFFERED`].
    out: Vec<u8>,
    /// How much of `out` has already been written.
    out_pos: usize,
    /// Close the connection once `out` is fully flushed.
    close_after_flush: bool,
    /// A deferred response being polled; while present, no further
    /// pipelined request is dispatched (responses stay in order).
    pub(crate) pending: Option<PendingResponse>,
    /// Keep-alive decision captured from the request that went pending.
    pending_keep_alive: bool,
    /// The peer has closed its write half (no more requests will arrive;
    /// responses may still be deliverable — HTTP half-close is legal).
    pub(crate) saw_eof: bool,
    /// Requests served on this connection.
    served: u64,
    /// Last time bytes arrived or response bytes were flushed.
    pub(crate) last_activity: Instant,
    /// Earliest next visit worth making (idle connections rotate at
    /// [`POLL_INTERVAL`]).
    pub(crate) next_check: Instant,
}

impl Conn {
    /// Queue a response for the wire (written by [`try_flush`] as the
    /// socket accepts it).
    fn queue_response(&mut self, resp: &HttpResponse, keep_alive: bool) {
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
        resp.encode_into(&mut self.out, keep_alive);
        if !keep_alive {
            self.close_after_flush = true;
        }
    }

    pub(crate) fn out_is_empty(&self) -> bool {
        self.out_pos == self.out.len()
    }
}

/// Write as much queued output as the socket accepts right now, without
/// ever blocking.  Returns `None` when the connection is dead, otherwise
/// whether any bytes were written.
fn try_flush(conn: &mut Conn) -> Option<bool> {
    let mut wrote = false;
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => return None,
            Ok(n) => {
                conn.out_pos += n;
                conn.last_activity = Instant::now();
                wrote = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return None,
        }
    }
    if conn.out_is_empty() {
        conn.out.clear();
        conn.out_pos = 0;
    } else if conn.out_pos > OUT_COMPACT_THRESHOLD {
        // Reclaim the flushed prefix; a never-fully-drained connection
        // must not retain every byte it ever sent.
        conn.out.drain(..conn.out_pos);
        conn.out_pos = 0;
    }
    Some(wrote)
}

/// Live backpressure metrics of the worker pool, exported so overload is
/// observable *before* the 503 connection limit trips (ROADMAP item; the
/// front end serves them on `/api/stats`).  All counters are relaxed
/// atomics — they are monitoring signals, not synchronization.
#[derive(Debug, Default)]
pub struct PoolMetrics {
    /// Connections currently open (gauge).
    active: AtomicUsize,
    /// Connections sitting in the run queue right now (gauge).
    queue_depth: AtomicUsize,
    /// Deferred responses (long-polls) currently parked (gauge).
    pending_responses: AtomicUsize,
    /// Connections parked in the readiness reactor (gauge; zero on the
    /// rotation-pool backend).
    parked: AtomicUsize,
    /// Requests served since start.
    served_total: AtomicU64,
    /// Scheduling visits performed.
    visits: AtomicU64,
    /// Total microseconds spent inside visits (service time).
    visit_us_total: AtomicU64,
    /// Worst single visit, microseconds.
    visit_us_max: AtomicU64,
    /// Total microseconds connections waited past their due time before a
    /// worker reached them (rotation latency).
    rotation_us_total: AtomicU64,
    /// Worst rotation latency, microseconds.
    rotation_us_max: AtomicU64,
}

/// A point-in-time copy of [`PoolMetrics`], serializable for `/api/stats`
/// responses and BENCH json embedding.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PoolMetricsSnapshot {
    /// Connections currently open.
    pub active_connections: usize,
    /// Connections waiting in the run queue.
    pub queue_depth: usize,
    /// Long-polls currently parked as deferred responses.
    pub pending_responses: usize,
    /// Connections parked in the readiness reactor (zero on the
    /// rotation-pool backend).
    pub parked_connections: usize,
    /// Requests served since start.
    pub requests_served: u64,
    /// Scheduling visits performed.
    pub visits: u64,
    /// Mean per-visit service time, microseconds.
    pub mean_visit_us: f64,
    /// Worst per-visit service time, microseconds.
    pub max_visit_us: u64,
    /// Mean worker rotation latency (lateness past a connection's due
    /// time), microseconds.
    pub mean_rotation_us: f64,
    /// Worst rotation latency, microseconds.
    pub max_rotation_us: u64,
}

impl PoolMetrics {
    /// Snapshot every counter.
    pub fn snapshot(&self) -> PoolMetricsSnapshot {
        let visits = self.visits.load(Ordering::Relaxed);
        let visit_us = self.visit_us_total.load(Ordering::Relaxed);
        let rotation_us = self.rotation_us_total.load(Ordering::Relaxed);
        PoolMetricsSnapshot {
            active_connections: self.active.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            pending_responses: self.pending_responses.load(Ordering::Relaxed),
            parked_connections: self.parked.load(Ordering::Relaxed),
            requests_served: self.served_total.load(Ordering::Relaxed),
            visits,
            mean_visit_us: if visits == 0 {
                0.0
            } else {
                visit_us as f64 / visits as f64
            },
            max_visit_us: self.visit_us_max.load(Ordering::Relaxed),
            mean_rotation_us: if visits == 0 {
                0.0
            } else {
                rotation_us as f64 / visits as f64
            },
            max_rotation_us: self.rotation_us_max.load(Ordering::Relaxed),
        }
    }

    /// Update the parked-connections gauge (readiness reactor only).
    pub(crate) fn set_parked(&self, parked: usize) {
        self.parked.store(parked, Ordering::Relaxed);
    }
}

pub(crate) struct Shared {
    queue: Mutex<VecDeque<Conn>>,
    cvar: Condvar,
    pub(crate) stop: AtomicBool,
    metrics: Arc<PoolMetrics>,
}

impl Shared {
    fn push(&self, conn: Conn) {
        let mut queue = self.queue.lock();
        queue.push_back(conn);
        self.metrics
            .queue_depth
            .store(queue.len(), Ordering::Relaxed);
        drop(queue);
        self.cvar.notify_one();
    }

    /// Requeue a batch of connections the reactor woke together (one lock
    /// acquisition, one broadcast — a publish wakes thousands of parked
    /// long-polls at once).
    pub(crate) fn push_batch(&self, conns: Vec<Conn>) {
        if conns.is_empty() {
            return;
        }
        let single = conns.len() == 1;
        let mut queue = self.queue.lock();
        queue.extend(conns);
        self.metrics
            .queue_depth
            .store(queue.len(), Ordering::Relaxed);
        drop(queue);
        if single {
            self.cvar.notify_one();
        } else {
            self.cvar.notify_all();
        }
    }

    /// Pop without waiting (shutdown drain).
    fn try_pop(&self) -> Option<Conn> {
        self.queue.lock().pop_front()
    }

    /// Pop the next connection, blocking until one is queued or stop is
    /// signalled; `None` only on stop with an empty queue.
    fn pop(&self) -> Option<Conn> {
        let mut queue = self.queue.lock();
        loop {
            if let Some(conn) = queue.pop_front() {
                self.metrics
                    .queue_depth
                    .store(queue.len(), Ordering::Relaxed);
                return Some(conn);
            }
            if self.stop.load(Ordering::Relaxed) {
                return None;
            }
            self.cvar.wait_for(&mut queue, Duration::from_millis(50));
        }
    }
}

/// A running HTTP server dispatching to a handler function.
pub struct HttpServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
    /// Present iff the readiness backend is active (requested *and*
    /// supported); `None` means the rotation pool is doing the waiting.
    reactor: Option<Arc<Reactor>>,
}

impl HttpServer {
    /// Bind to `addr` (e.g. `"127.0.0.1:0"`) with the default
    /// [`HttpServerConfig`].
    pub fn start<F>(addr: &str, handler: F) -> std::io::Result<HttpServer>
    where
        F: Fn(HttpRequest) -> Outcome + Send + Sync + 'static,
    {
        HttpServer::start_with(addr, HttpServerConfig::default(), handler)
    }

    /// Bind to `addr` and serve with an explicit configuration: one
    /// acceptor thread plus `config.workers` pool workers.
    pub fn start_with<F>(
        addr: &str,
        config: HttpServerConfig,
        handler: F,
    ) -> std::io::Result<HttpServer>
    where
        F: Fn(HttpRequest) -> Outcome + Send + Sync + 'static,
    {
        HttpServer::start_with_metrics(addr, config, Arc::new(PoolMetrics::default()), handler)
    }

    /// [`HttpServer::start_with`] publishing into a caller-supplied
    /// [`PoolMetrics`] — so a route handler built *before* the server can
    /// serve the server's own metrics (the `/api/stats` pattern).
    pub fn start_with_metrics<F>(
        addr: &str,
        config: HttpServerConfig,
        metrics: Arc<PoolMetrics>,
        handler: F,
    ) -> std::io::Result<HttpServer>
    where
        F: Fn(HttpRequest) -> Outcome + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cvar: Condvar::new(),
            stop: AtomicBool::new(false),
            metrics,
        });
        let handler: Arc<Handler> = Arc::new(handler);
        let mut threads = Vec::with_capacity(config.workers + 2);

        // The readiness backend degrades to the pool at runtime (not
        // compile time) when epoll is unavailable, so the same binary
        // works everywhere.
        let reactor = match config.backend {
            Backend::Pool => None,
            Backend::Readiness => Reactor::new(config.keep_alive, shared.metrics.clone()).ok(),
        };
        if let Some(reactor) = &reactor {
            let reactor = reactor.clone();
            let shared = shared.clone();
            threads.push(std::thread::spawn(move || reactor.run(&shared)));
        }

        let accept_shared = shared.clone();
        let max_connections = config.max_connections.max(1);
        threads.push(std::thread::spawn(move || {
            accept_loop(listener, accept_shared, max_connections)
        }));
        for _ in 0..config.workers.max(1) {
            let shared = shared.clone();
            let handler = handler.clone();
            let config = config.clone();
            let reactor = reactor.clone();
            threads.push(std::thread::spawn(move || {
                worker_loop(shared, handler, config, reactor)
            }));
        }
        Ok(HttpServer {
            addr: local,
            shared,
            threads,
            reactor,
        })
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently open (queued or being serviced).
    pub fn active_connections(&self) -> usize {
        self.shared.metrics.active.load(Ordering::Relaxed)
    }

    /// Total requests served since start.
    pub fn requests_served(&self) -> u64 {
        self.shared.metrics.served_total.load(Ordering::Relaxed)
    }

    /// The pool's live backpressure metrics.
    pub fn metrics(&self) -> Arc<PoolMetrics> {
        self.shared.metrics.clone()
    }

    /// The publish doorbell, when the readiness backend is active: ring it
    /// whenever new data could resolve parked long-polls (the hub rings it
    /// on every frame publish).  `None` on the rotation pool, whose 2 ms
    /// revisits need no doorbell.
    pub fn waker(&self) -> Option<Waker> {
        self.reactor.as_ref().map(|r| r.waker())
    }

    /// Gracefully stop the server: no new connections are accepted, workers
    /// flush any response that is already computable, every connection is
    /// closed, and all threads are joined.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        // Wake the reactor out of epoll_wait so it hands its parked
        // connections back for draining before it exits.
        if let Some(reactor) = &self.reactor {
            reactor.waker().ring();
        }
        self.shared.cvar.notify_all();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
        // Connections the reactor requeued after the last worker already
        // exited (stop + momentarily-empty queue) are drained here so a
        // computable response still reaches the wire.
        while let Some(mut conn) = self.shared.try_pop() {
            if let Some(mut pending) = conn.pending.take() {
                if let Some(resp) = pending() {
                    conn.queue_response(&resp, false);
                }
            }
            let _ = try_flush(&mut conn);
            self.shared.metrics.active.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Source of process-unique connection ids (`0` is reserved for "no
/// connection", so the counter starts at 1).  Process-wide rather than
/// per-server: a request's connection id then never collides even across
/// servers sharing a hub in tests.
static NEXT_CONN_ID: AtomicU64 = AtomicU64::new(1);

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, max_connections: usize) {
    while !shared.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                if shared.metrics.active.load(Ordering::Relaxed) >= max_connections {
                    // Crisp overload behaviour: tell the client and close.
                    // Drain whatever request bytes already arrived first —
                    // closing with unread input makes the kernel RST the
                    // connection, which would discard the 503 before the
                    // client reads it.
                    if stream.set_nonblocking(true).is_ok() {
                        // Bounded drain: the acceptor must not be pinned
                        // by one client streaming data at it.
                        let mut sink = [0u8; 1024];
                        let mut drained = 0usize;
                        while drained < 16 << 10 {
                            match stream.read(&mut sink) {
                                Ok(n) if n > 0 => drained += n,
                                _ => break,
                            }
                        }
                        let _ = stream.set_nonblocking(false);
                    }
                    let _ = stream.write_all(&HttpResponse::service_unavailable().encode(false));
                    let _ = stream.shutdown(std::net::Shutdown::Write);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                shared.metrics.active.fetch_add(1, Ordering::Relaxed);
                let now = Instant::now();
                shared.push(Conn {
                    id: NEXT_CONN_ID.fetch_add(1, Ordering::Relaxed),
                    stream,
                    buf: Vec::new(),
                    out: Vec::new(),
                    out_pos: 0,
                    close_after_flush: false,
                    pending: None,
                    pending_keep_alive: true,
                    saw_eof: false,
                    served: 0,
                    last_activity: now,
                    next_check: now,
                });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

fn worker_loop(
    shared: Arc<Shared>,
    handler: Arc<Handler>,
    config: HttpServerConfig,
    reactor: Option<Arc<Reactor>>,
) {
    // Not-yet-due connections skipped since the last productive visit (or
    // nap).  Napping only after a full rotation's worth of skips keeps the
    // wake-up latency at ~POLL_INTERVAL regardless of connection count —
    // a due connection is reached by fast pop/requeue cycles, not behind a
    // 1ms sleep per queued connection — while still idling the CPU when
    // nothing is due anywhere.
    let mut skipped: usize = 0;
    loop {
        let stopping = shared.stop.load(Ordering::Relaxed);
        let Some(mut conn) = shared.pop() else {
            return; // stop signalled and queue drained
        };
        if stopping {
            // Drain mode: queue a pending response if it is ready right
            // now, flush what the socket accepts, then close.  Clients
            // mid-long-poll see EOF and re-poll.
            if conn.pending.is_some() {
                shared
                    .metrics
                    .pending_responses
                    .fetch_sub(1, Ordering::Relaxed);
            }
            if let Some(mut pending) = conn.pending.take() {
                if let Some(resp) = pending() {
                    conn.queue_response(&resp, false);
                }
            }
            let _ = try_flush(&mut conn);
            shared.metrics.active.fetch_sub(1, Ordering::Relaxed);
            continue;
        }
        let now = Instant::now();
        if conn.next_check > now {
            let nap = (conn.next_check - now).min(Duration::from_millis(1));
            shared.push(conn);
            skipped += 1;
            // This worker's share of a full rotation was all not-due:
            // everything is waiting, so sleep instead of spinning.
            let share =
                (shared.metrics.active.load(Ordering::Relaxed) / config.workers.max(1)).max(1);
            if skipped > share {
                skipped = 0;
                std::thread::sleep(nap);
            }
            continue;
        }
        skipped = 0;
        // Rotation latency: how far past its due time this connection sat
        // before a worker reached it — the long-poll wake-up latency the
        // pool actually delivers, which degrades before the 503 limit.
        let rotation_us = now.saturating_duration_since(conn.next_check).as_micros() as u64;
        let had_pending = conn.pending.is_some();
        // Snapshot the publish generation *before* the visit: if the hub
        // publishes between the handler's check and the park below,
        // try_park sees a newer generation and refuses (see the
        // readiness module docs for the full race argument).
        let gen_at_visit = reactor.as_ref().map_or(0, |r| r.publish_gen());
        let visit_started = Instant::now();
        let mut progressed = false;
        let outcome = service(conn, handler.as_ref(), &config, &shared, &mut progressed);
        let visit_us = visit_started.elapsed().as_micros() as u64;
        let metrics = &shared.metrics;
        metrics.visits.fetch_add(1, Ordering::Relaxed);
        metrics
            .visit_us_total
            .fetch_add(visit_us, Ordering::Relaxed);
        metrics.visit_us_max.fetch_max(visit_us, Ordering::Relaxed);
        metrics
            .rotation_us_total
            .fetch_add(rotation_us, Ordering::Relaxed);
        metrics
            .rotation_us_max
            .fetch_max(rotation_us, Ordering::Relaxed);
        let has_pending = outcome.as_ref().is_some_and(|c| c.pending.is_some());
        match (had_pending, has_pending) {
            (false, true) => {
                metrics.pending_responses.fetch_add(1, Ordering::Relaxed);
            }
            (true, false) => {
                metrics.pending_responses.fetch_sub(1, Ordering::Relaxed);
            }
            _ => {}
        }
        match outcome {
            Some(conn) => {
                // Readiness backend: a visit that made no progress means
                // this connection is waiting on its socket, on a publish,
                // or on a timeout — all of which the reactor can watch
                // without the pool revisiting the connection every 2 ms.
                match &reactor {
                    Some(reactor) if !progressed => {
                        if let Err(mut refused) = reactor.try_park(conn, gen_at_visit) {
                            // A publish raced the visit (or registration
                            // failed): re-check immediately.
                            refused.next_check = Instant::now();
                            shared.push(refused);
                        }
                    }
                    _ => shared.push(conn),
                }
            }
            None => {
                metrics.active.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }
}

/// One scheduling visit to a connection: flush queued output, ingest
/// newly-arrived bytes, resolve a pending response if it is ready,
/// dispatch every complete request, and decide whether the connection
/// lives on.  Never blocks — reads, writes and long-polls are all
/// deferred to later visits when the socket (or the data) is not ready.
/// Returns the connection to requeue, or `None` when it is closed.
/// `made_progress` reports whether the visit accomplished anything (bytes
/// moved or a request dispatched) — the readiness backend parks
/// connections whose visit reports `false`.
fn service(
    mut conn: Conn,
    handler: &Handler,
    config: &HttpServerConfig,
    shared: &Shared,
    made_progress: &mut bool,
) -> Option<Conn> {
    let mut progressed = false;

    // 1. Flush output queued on earlier visits first: responses must hit
    //    the wire in order, and a dead peer surfaces here cheapest.
    if try_flush(&mut conn)? {
        progressed = true;
    }
    if conn.out.len() - conn.out_pos > MAX_OUT_BUFFERED {
        return None; // reader hopelessly behind
    }

    // 2. Ingest whatever bytes have arrived (non-blocking reads).
    if !conn.saw_eof {
        let mut chunk = [0u8; 4096];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    // Peer closed its write half — legal HTTP half-close.
                    // No more requests will arrive, but everything already
                    // buffered (including a pending long-poll) must still
                    // be answered: the peer can still read.
                    conn.saw_eof = true;
                    break;
                }
                Ok(n) => {
                    conn.buf.extend_from_slice(&chunk[..n]);
                    // Input cap, enforced inside the loop (a saturated
                    // socket keeps delivering full chunks without ever
                    // hitting WouldBlock) and regardless of whether
                    // dispatch below runs this visit (a pending long-poll
                    // defers dispatch but must not defer the limit).
                    if conn.buf.len() > MAX_IN_BUFFERED {
                        return None;
                    }
                    conn.last_activity = Instant::now();
                    progressed = true;
                    if n < chunk.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return None,
            }
        }
    }

    // 3. A deferred response blocks everything behind it (responses stay
    //    in order).  After a half-close it keeps waiting — the peer can
    //    still read its answer — but must close once resolved, and a dead
    //    (fully-closed) peer is bounded by the idle timeout in step 6
    //    instead of holding its slot until the poll deadline.
    if let Some(mut pending) = conn.pending.take() {
        match pending() {
            Some(resp) => {
                let keep = conn.pending_keep_alive && !conn.saw_eof;
                conn.queue_response(&resp, keep);
                progressed = true;
            }
            None => {
                conn.pending = Some(pending);
            }
        }
    }

    // 4. Dispatch every complete request in the buffer, stopping if one
    //    goes pending (its successors stay buffered until it resolves), a
    //    response has demanded close, or a non-reading client has a full
    //    output buffer (the cap must hold within a visit too: a pipelined
    //    burst of cheap requests for large responses would otherwise
    //    amplify into unbounded memory before the next visit's check).
    while conn.pending.is_none()
        && !conn.close_after_flush
        && conn.out.len() - conn.out_pos <= MAX_OUT_BUFFERED
    {
        match HttpRequest::parse_buf(&conn.buf) {
            Parse::Complete(mut request, consumed) => {
                conn.buf.drain(..consumed);
                conn.served += 1;
                shared.metrics.served_total.fetch_add(1, Ordering::Relaxed);
                progressed = true;
                let rotate = config.max_requests_per_connection > 0
                    && conn.served >= config.max_requests_per_connection;
                let keep = request.wants_keep_alive() && !rotate;
                request.connection = conn.id;
                match handler(*request) {
                    Outcome::Ready(resp) => conn.queue_response(&resp, keep && !conn.saw_eof),
                    Outcome::Pending(mut pending) => {
                        // Fast path: resolve immediately if the data is
                        // already there (a poll with a new frame waiting).
                        match pending() {
                            Some(resp) => conn.queue_response(&resp, keep && !conn.saw_eof),
                            None => {
                                conn.pending = Some(pending);
                                conn.pending_keep_alive = keep;
                            }
                        }
                    }
                }
            }
            Parse::Partial => break,
            Parse::Invalid => {
                conn.queue_response(&HttpResponse::bad_request("malformed request"), false);
                break;
            }
        }
    }

    // 5. After EOF nothing further can arrive: close once everything
    //    queued has been flushed (a half-closed peer can still read it).
    if conn.saw_eof && conn.pending.is_none() {
        conn.close_after_flush = true;
    }

    // 6. Idle keep-alive timeout.  This applies equally to a connection
    //    stalled mid-request (`buf` non-empty) or mid-response-read
    //    (`out` non-empty): a peer that stops moving bytes must not hold
    //    a connection slot forever (slowloris).  `last_activity`
    //    refreshes on every received and flushed byte, so slow-but-live
    //    clients are unaffected.  A live pending long-poll is bounded by
    //    its own deadline instead — unless the peer already closed its
    //    write half, where the idle timeout caps how long a possibly-dead
    //    socket can wait for a frame.
    if (conn.pending.is_none() || conn.saw_eof) && conn.last_activity.elapsed() > config.keep_alive
    {
        return None;
    }

    // 7. Push freshly-queued output at the socket; close if this was the
    //    connection's last response and it is fully out.
    if try_flush(&mut conn)? {
        progressed = true;
    }
    if conn.close_after_flush && conn.out_is_empty() && conn.pending.is_none() {
        return None;
    }

    *made_progress = progressed;
    conn.next_check = if progressed {
        Instant::now()
    } else {
        Instant::now() + POLL_INTERVAL
    };
    Some(conn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse_ok(raw: &[u8]) -> HttpRequest {
        match HttpRequest::parse_buf(raw) {
            Parse::Complete(req, consumed) => {
                assert_eq!(consumed, raw.len(), "whole buffer consumed");
                *req
            }
            other => panic!("expected complete parse, got {other:?}"),
        }
    }

    #[test]
    fn parses_get_with_query_and_headers() {
        let req = parse_ok(
            b"GET /api/poll?since=3&client=a%20b HTTP/1.1\r\nHost: x\r\nX-Test: 1\r\n\r\n",
        );
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/api/poll");
        assert_eq!(req.version, "HTTP/1.1");
        assert_eq!(req.query_param("since"), Some("3"));
        assert_eq!(req.query_param("client"), Some("a b"));
        assert_eq!(req.headers.get("x-test").map(String::as_str), Some("1"));
        assert!(req.body.is_empty());
        assert!(req.wants_keep_alive());
    }

    #[test]
    fn parses_post_body_with_content_length() {
        let req = parse_ok(b"POST /api/steer HTTP/1.1\r\nContent-Length: 11\r\n\r\n{\"cfl\":0.2}");
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{\"cfl\":0.2}");
    }

    #[test]
    fn partial_requests_wait_for_more_bytes() {
        assert!(matches!(HttpRequest::parse_buf(b""), Parse::Partial));
        assert!(matches!(
            HttpRequest::parse_buf(b"GET /x HTTP/1.1\r\nHost:"),
            Parse::Partial
        ));
        // Headers complete but body still in flight.
        assert!(matches!(
            HttpRequest::parse_buf(b"POST /s HTTP/1.1\r\nContent-Length: 5\r\n\r\nab"),
            Parse::Partial
        ));
    }

    #[test]
    fn malformed_and_oversized_requests_are_invalid() {
        assert!(matches!(
            HttpRequest::parse_buf(b"\r\n\r\n"),
            Parse::Invalid
        ));
        let huge = vec![b'a'; MAX_HEADER_BYTES + 8];
        assert!(matches!(HttpRequest::parse_buf(&huge), Parse::Invalid));
        let bomb = b"POST /x HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n";
        assert!(matches!(HttpRequest::parse_buf(bomb), Parse::Invalid));
    }

    #[test]
    fn bare_lf_requests_are_not_framed_by_a_later_crlf_terminator() {
        // A bare-LF request pipelined before a CRLF request: the earliest
        // terminator must win, or /b's bytes would be swallowed as /a's
        // header block.
        let raw = b"GET /a HTTP/1.1\n\nGET /b HTTP/1.1\r\n\r\n".to_vec();
        let Parse::Complete(first, consumed) = HttpRequest::parse_buf(&raw) else {
            panic!("first request should parse");
        };
        assert_eq!(first.path, "/a");
        let Parse::Complete(second, consumed2) = HttpRequest::parse_buf(&raw[consumed..]) else {
            panic!("second request should parse");
        };
        assert_eq!(second.path, "/b");
        assert_eq!(consumed + consumed2, raw.len());
        // A bare-LF POST whose body contains CRLFCRLF frames correctly too.
        let raw = b"POST /s HTTP/1.1\nContent-Length: 8\n\nab\r\n\r\ncd".to_vec();
        let Parse::Complete(req, consumed) = HttpRequest::parse_buf(&raw) else {
            panic!("bare-LF POST should parse");
        };
        assert_eq!(req.body, b"ab\r\n\r\ncd");
        assert_eq!(consumed, raw.len());
    }

    #[test]
    fn pipelined_requests_consume_exactly_their_bytes() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n".to_vec();
        let Parse::Complete(first, consumed) = HttpRequest::parse_buf(&raw) else {
            panic!("first request should parse");
        };
        assert_eq!(first.path, "/a");
        let Parse::Complete(second, consumed2) = HttpRequest::parse_buf(&raw[consumed..]) else {
            panic!("second request should parse");
        };
        assert_eq!(second.path, "/b");
        assert_eq!(consumed + consumed2, raw.len());
    }

    #[test]
    fn keep_alive_defaults_follow_http_version_and_connection_header() {
        let v11 = parse_ok(b"GET / HTTP/1.1\r\n\r\n");
        assert!(v11.wants_keep_alive());
        let v10 = parse_ok(b"GET / HTTP/1.0\r\n\r\n");
        assert!(!v10.wants_keep_alive());
        let close = parse_ok(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!close.wants_keep_alive());
        let ka10 = parse_ok(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(ka10.wants_keep_alive());
    }

    #[test]
    fn query_decoding_handles_plus_and_percent() {
        let q = parse_query("a=1+2&b=%41%20c&flag");
        assert_eq!(q.get("a").unwrap(), "1 2");
        assert_eq!(q.get("b").unwrap(), "A c");
        assert_eq!(q.get("flag").unwrap(), "");
        assert!(parse_query("").is_empty());
    }

    #[test]
    fn response_encoding_includes_length_connection_and_body() {
        let resp = HttpResponse::ok("text/plain", "hello");
        let wire = String::from_utf8(resp.encode(true)).unwrap();
        assert!(wire.starts_with("HTTP/1.1 200 OK"));
        assert!(wire.contains("Content-Length: 5"));
        assert!(wire.contains("Connection: keep-alive"));
        assert!(wire.ends_with("hello"));
        let wire = String::from_utf8(resp.encode(false)).unwrap();
        assert!(wire.contains("Connection: close"));
        assert_eq!(HttpResponse::not_found().status, 404);
        assert_eq!(HttpResponse::bad_request("x").status, 400);
        assert_eq!(HttpResponse::service_unavailable().status, 503);
        let json = HttpResponse::json(&serde_json::json!({"ok": true}));
        assert_eq!(json.content_type, "application/json");
        let shared = HttpResponse::json_shared(Arc::from("{\"a\":1}"));
        assert_eq!(shared.body.as_bytes(), b"{\"a\":1}");
        assert_eq!(shared.body, Body::Owned(b"{\"a\":1}".to_vec()));
    }

    /// One response off a blocking stream, via the shared client-side
    /// reader.
    fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, Vec<u8>) {
        let (status, _, body) = read_blocking_response(reader).unwrap();
        (status, body)
    }

    #[test]
    fn keep_alive_serves_many_requests_on_one_connection() {
        let server = HttpServer::start("127.0.0.1:0", |req| {
            HttpResponse::ok("text/plain", format!("you asked for {}", req.path)).into()
        })
        .unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        for i in 0..5 {
            writer
                .write_all(format!("GET /req{i} HTTP/1.1\r\nHost: l\r\n\r\n").as_bytes())
                .unwrap();
            let (status, body) = read_response(&mut reader);
            assert_eq!(status, 200);
            assert_eq!(body, format!("you asked for /req{i}").as_bytes());
        }
        assert_eq!(server.requests_served(), 5);
        assert_eq!(server.active_connections(), 1);
        server.shutdown();
    }

    #[test]
    fn pipelined_requests_get_ordered_responses() {
        let server = HttpServer::start("127.0.0.1:0", |req| {
            HttpResponse::ok("text/plain", req.path).into()
        })
        .unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writer
            .write_all(
                b"GET /one HTTP/1.1\r\n\r\nGET /two HTTP/1.1\r\n\r\nGET /three HTTP/1.1\r\n\r\n",
            )
            .unwrap();
        for expect in ["/one", "/two", "/three"] {
            let (status, body) = read_response(&mut reader);
            assert_eq!(status, 200);
            assert_eq!(body, expect.as_bytes());
        }
        server.shutdown();
    }

    #[test]
    fn connection_close_is_honoured() {
        let server = HttpServer::start("127.0.0.1:0", |_| {
            HttpResponse::ok("text/plain", "bye").into()
        })
        .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream
            .write_all(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        let mut reader = BufReader::new(stream);
        reader.read_to_string(&mut response).unwrap(); // EOF only if closed
        assert!(response.contains("Connection: close"));
        assert!(response.ends_with("bye"));
        server.shutdown();
    }

    #[test]
    fn pending_outcomes_long_poll_without_blocking_workers() {
        // One worker, several waiting clients: with thread-per-poll this
        // would deadlock; with deferred responses one worker serves all.
        let released = Arc::new(AtomicBool::new(false));
        let released2 = released.clone();
        let config = HttpServerConfig {
            workers: 1,
            ..HttpServerConfig::default()
        };
        let server = HttpServer::start_with("127.0.0.1:0", config, move |_| {
            let released = released2.clone();
            let deadline = Instant::now() + Duration::from_secs(5);
            Outcome::Pending(Box::new(move || {
                if released.load(Ordering::Relaxed) {
                    Some(HttpResponse::ok("text/plain", "released"))
                } else if Instant::now() >= deadline {
                    Some(HttpResponse::ok("text/plain", "timeout"))
                } else {
                    None
                }
            }))
        })
        .unwrap();
        let addr = server.addr();
        let clients: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let stream = TcpStream::connect(addr).unwrap();
                    stream
                        .set_read_timeout(Some(Duration::from_secs(10)))
                        .unwrap();
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut writer = stream;
                    writer.write_all(b"GET /wait HTTP/1.1\r\n\r\n").unwrap();
                    read_response(&mut reader)
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(100));
        released.store(true, Ordering::Relaxed);
        for client in clients {
            let (status, body) = client.join().unwrap();
            assert_eq!(status, 200);
            assert_eq!(body, b"released");
        }
        server.shutdown();
    }

    #[test]
    fn half_closed_long_polls_still_receive_their_response() {
        // HTTP half-close is legal: a client that shuts down its write
        // side after sending a long-poll must still get the response when
        // it resolves (and the connection closes right after).
        let released = Arc::new(AtomicBool::new(false));
        let released2 = released.clone();
        let server = HttpServer::start("127.0.0.1:0", move |_| {
            let released = released2.clone();
            let deadline = Instant::now() + Duration::from_secs(5);
            Outcome::Pending(Box::new(move || {
                if released.load(Ordering::Relaxed) {
                    Some(HttpResponse::ok("text/plain", "late"))
                } else if Instant::now() >= deadline {
                    Some(HttpResponse::ok("text/plain", "timeout"))
                } else {
                    None
                }
            }))
        })
        .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(b"GET /wait HTTP/1.1\r\n\r\n").unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        released.store(true, Ordering::Relaxed);
        let mut response = String::new();
        let mut reader = BufReader::new(stream);
        reader.read_to_string(&mut response).unwrap();
        assert!(response.ends_with("late"), "got: {response}");
        assert!(response.contains("Connection: close"));
        server.shutdown();
    }

    #[test]
    fn connection_limit_returns_503() {
        let config = HttpServerConfig {
            workers: 2,
            max_connections: 1,
            ..HttpServerConfig::default()
        };
        let server = HttpServer::start_with("127.0.0.1:0", config, |_| {
            HttpResponse::ok("text/plain", "hi").into()
        })
        .unwrap();
        // First connection occupies the single slot.
        let first = TcpStream::connect(server.addr()).unwrap();
        // Wait until the acceptor has registered it.
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.active_connections() < 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(server.active_connections(), 1);
        let second = TcpStream::connect(server.addr()).unwrap();
        second
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut response = String::new();
        let mut reader = BufReader::new(second.try_clone().unwrap());
        reader.read_to_string(&mut response).unwrap();
        assert!(response.contains("503"), "got: {response}");
        drop(first);
        server.shutdown();
    }

    #[test]
    fn requests_buffered_at_eof_are_still_answered() {
        // The client writes its request and immediately half-closes; the
        // fully-buffered request must still get a response.
        let server = HttpServer::start("127.0.0.1:0", |req| {
            HttpResponse::ok("text/plain", req.path).into()
        })
        .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(b"GET /flush HTTP/1.1\r\n\r\n").unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut response = String::new();
        let mut reader = BufReader::new(stream);
        reader.read_to_string(&mut response).unwrap();
        assert!(response.contains("200 OK"), "got: {response}");
        assert!(response.ends_with("/flush"), "got: {response}");
        server.shutdown();
    }

    #[test]
    fn stalled_partial_requests_are_timed_out_not_parked_forever() {
        // Slowloris guard: a connection that sends half a request and goes
        // silent must be closed at the keep-alive timeout, freeing its
        // connection slot.
        let config = HttpServerConfig {
            workers: 1,
            keep_alive: Duration::from_millis(100),
            ..HttpServerConfig::default()
        };
        let server = HttpServer::start_with("127.0.0.1:0", config, |_| {
            HttpResponse::ok("text/plain", "x").into()
        })
        .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(b"GET / HTTP/1.1\r\nX-Half:").unwrap(); // never finished
        let mut reader = BufReader::new(stream);
        let mut rest = String::new();
        // The server closes the socket (EOF) without a response once the
        // idle timeout passes.
        reader.read_to_string(&mut rest).unwrap();
        assert!(rest.is_empty(), "no response expected, got: {rest}");
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.active_connections() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(server.active_connections(), 0, "slot must be freed");
        server.shutdown();
    }

    #[test]
    fn graceful_shutdown_joins_all_threads() {
        let server = HttpServer::start("127.0.0.1:0", |_| {
            HttpResponse::ok("text/plain", "x").into()
        })
        .unwrap();
        let addr = server.addr();
        // A connection parked in a long keep-alive must not wedge shutdown.
        let _idle = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        server.shutdown(); // joins; the test passes iff this returns
    }

    /// Config for the readiness backend; tests using it return early on
    /// platforms without epoll (where the server would silently fall back
    /// to the pool and the assertions below about parking would not hold).
    fn readiness_config() -> HttpServerConfig {
        HttpServerConfig {
            backend: Backend::Readiness,
            ..HttpServerConfig::default()
        }
    }

    #[test]
    fn readiness_backend_serves_keep_alive_and_pipelining() {
        if !epoll::is_supported() {
            return;
        }
        let server = HttpServer::start_with("127.0.0.1:0", readiness_config(), |req| {
            HttpResponse::ok("text/plain", req.path).into()
        })
        .unwrap();
        assert!(server.waker().is_some(), "readiness backend must be active");
        let stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        // Sequential keep-alive requests with idle gaps (the connection
        // parks between them and must wake on arriving bytes)...
        for i in 0..3 {
            std::thread::sleep(Duration::from_millis(30));
            writer
                .write_all(format!("GET /seq{i} HTTP/1.1\r\nHost: l\r\n\r\n").as_bytes())
                .unwrap();
            let (status, body) = read_response(&mut reader);
            assert_eq!(status, 200);
            assert_eq!(body, format!("/seq{i}").as_bytes());
        }
        // ... then a pipelined burst, answered in order.
        writer
            .write_all(
                b"GET /one HTTP/1.1\r\n\r\nGET /two HTTP/1.1\r\n\r\nGET /three HTTP/1.1\r\n\r\n",
            )
            .unwrap();
        for expect in ["/one", "/two", "/three"] {
            let (status, body) = read_response(&mut reader);
            assert_eq!(status, 200);
            assert_eq!(body, expect.as_bytes());
        }
        server.shutdown();
    }

    #[test]
    fn readiness_parks_long_polls_and_wakes_them_on_the_doorbell() {
        if !epoll::is_supported() {
            return;
        }
        // The scheduling claim under test: a parked long-poll's closure is
        // re-polled on the reactor's PENDING_RECHECK cadence (~20/s), not
        // the pool's 2 ms rotation (~500/s).
        let closure_polls = Arc::new(AtomicU64::new(0));
        let released = Arc::new(AtomicBool::new(false));
        let (polls2, released2) = (closure_polls.clone(), released.clone());
        let server = HttpServer::start_with("127.0.0.1:0", readiness_config(), move |_| {
            let (polls, released) = (polls2.clone(), released2.clone());
            Outcome::Pending(Box::new(move || {
                polls.fetch_add(1, Ordering::Relaxed);
                released
                    .load(Ordering::Relaxed)
                    .then(|| HttpResponse::ok("text/plain", "released"))
            }))
        })
        .unwrap();
        let waker = server.waker().expect("readiness backend active");
        let stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writer.write_all(b"GET /wait HTTP/1.1\r\n\r\n").unwrap();

        // While the long-poll waits, the connection must show up in the
        // parked gauge ...
        let metrics = server.metrics();
        let deadline = Instant::now() + Duration::from_secs(5);
        while metrics.snapshot().parked_connections == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(
            metrics.snapshot().parked_connections >= 1,
            "long-poll must park in the reactor"
        );
        // ... and accumulate closure polls at the parked cadence.  300 ms
        // is ~6 rechecks parked vs ~150 pool rotations; 40 leaves slack
        // for scheduler noise in either direction.
        std::thread::sleep(Duration::from_millis(300));
        let polled = closure_polls.load(Ordering::Relaxed);
        assert!(
            polled < 40,
            "parked long-poll was re-polled {polled} times in 300 ms — \
             that is rotation-pool cadence, not parking"
        );

        // The doorbell resolves it.
        released.store(true, Ordering::Relaxed);
        waker.ring();
        let (status, body) = read_response(&mut reader);
        assert_eq!(status, 200);
        assert_eq!(body, b"released");
        server.shutdown();
    }

    #[test]
    fn readiness_parked_idle_connections_time_out() {
        if !epoll::is_supported() {
            return;
        }
        let config = HttpServerConfig {
            keep_alive: Duration::from_millis(100),
            ..readiness_config()
        };
        let server = HttpServer::start_with("127.0.0.1:0", config, |_| {
            HttpResponse::ok("text/plain", "x").into()
        })
        .unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        // Never send anything: the parked connection must still be closed
        // at the keep-alive deadline (slowloris guard survives parking).
        let mut reader = BufReader::new(stream);
        let mut rest = String::new();
        reader.read_to_string(&mut rest).unwrap(); // EOF = server closed
        assert!(rest.is_empty());
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.active_connections() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(server.active_connections(), 0, "slot must be freed");
        server.shutdown();
    }

    #[test]
    fn readiness_graceful_shutdown_with_parked_connections() {
        if !epoll::is_supported() {
            return;
        }
        let server = HttpServer::start_with("127.0.0.1:0", readiness_config(), |_| {
            let deadline = Instant::now() + Duration::from_secs(30);
            Outcome::Pending(Box::new(move || {
                (Instant::now() >= deadline).then(|| HttpResponse::ok("text/plain", "t"))
            }))
        })
        .unwrap();
        let addr = server.addr();
        let _idle = TcpStream::connect(addr).unwrap();
        let mut polling = TcpStream::connect(addr).unwrap();
        polling.write_all(b"GET /wait HTTP/1.1\r\n\r\n").unwrap();
        // Let both connections reach the parked state, then shut down: the
        // reactor must hand them back and every thread must join.
        std::thread::sleep(Duration::from_millis(150));
        server.shutdown(); // the test passes iff this returns
    }

    #[test]
    fn malformed_requests_get_400_and_close() {
        let server = HttpServer::start("127.0.0.1:0", |_| {
            HttpResponse::ok("text/plain", "x").into()
        })
        .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(b"\r\n\r\n").unwrap();
        let mut response = String::new();
        let mut reader = BufReader::new(stream);
        reader.read_to_string(&mut response).unwrap();
        assert!(response.contains("400"), "got: {response}");
        server.shutdown();
    }
}
