//! A minimal HTTP/1.1 server.
//!
//! Just enough HTTP to serve the Ajax page and its `XMLHttpRequest` API:
//! GET/POST parsing with headers and body, query-string parameters, and
//! fixed-length responses.  Connections are handled one request at a time on
//! a small thread pool (`Connection: close`), which is plenty for a steering
//! UI with a handful of concurrent viewers.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method (`GET`, `POST`, ...).
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Decoded query-string parameters.
    pub query: HashMap<String, String>,
    /// Header fields, lower-cased names.
    pub headers: HashMap<String, String>,
    /// Request body.
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// A query parameter by name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.get(name).map(String::as_str)
    }

    /// Parse a request from a reader.
    pub fn parse(stream: &mut dyn BufRead) -> Option<HttpRequest> {
        let mut request_line = String::new();
        stream.read_line(&mut request_line).ok()?;
        let mut parts = request_line.split_whitespace();
        let method = parts.next()?.to_string();
        let target = parts.next()?.to_string();
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), parse_query(q)),
            None => (target, HashMap::new()),
        };
        let mut headers = HashMap::new();
        loop {
            let mut line = String::new();
            stream.read_line(&mut line).ok()?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
            }
        }
        let content_length: usize = headers
            .get("content-length")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let mut body = vec![0u8; content_length.min(16 << 20)];
        if !body.is_empty() {
            stream.read_exact(&mut body).ok()?;
        }
        Some(HttpRequest {
            method,
            path,
            query,
            headers,
            body,
        })
    }
}

/// Decode an `application/x-www-form-urlencoded` style query string.
pub fn parse_query(query: &str) -> HashMap<String, String> {
    query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (url_decode(k), url_decode(v)),
            None => (url_decode(kv), String::new()),
        })
        .collect()
}

fn url_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).unwrap_or("");
                if let Ok(v) = u8::from_str_radix(hex, 16) {
                    out.push(v);
                    i += 3;
                    continue;
                }
                out.push(b'%');
                i += 1;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// An HTTP response under construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Content type.
    pub content_type: String,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// A 200 response with the given content type and body.
    pub fn ok(content_type: &str, body: impl Into<Vec<u8>>) -> Self {
        HttpResponse {
            status: 200,
            content_type: content_type.to_string(),
            body: body.into(),
        }
    }

    /// A JSON response.
    pub fn json(value: &serde_json::Value) -> Self {
        HttpResponse::ok("application/json", value.to_string().into_bytes())
    }

    /// A 404 response.
    pub fn not_found() -> Self {
        HttpResponse {
            status: 404,
            content_type: "text/plain".into(),
            body: b"not found".to_vec(),
        }
    }

    /// A 400 response with a reason.
    pub fn bad_request(reason: &str) -> Self {
        HttpResponse {
            status: 400,
            content_type: "text/plain".into(),
            body: reason.as_bytes().to_vec(),
        }
    }

    /// Serialize to wire format.
    pub fn encode(&self) -> Vec<u8> {
        let reason = match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            _ => "Unknown",
        };
        let mut out = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nAccess-Control-Allow-Origin: *\r\nConnection: close\r\n\r\n",
            self.status,
            reason,
            self.content_type,
            self.body.len()
        )
        .into_bytes();
        out.extend_from_slice(&self.body);
        out
    }
}

/// A running HTTP server dispatching to a handler function.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Bind to `addr` (e.g. `"127.0.0.1:0"`) and serve requests with
    /// `handler` on a background thread.
    pub fn start<F>(addr: &str, handler: F) -> std::io::Result<HttpServer>
    where
        F: Fn(HttpRequest) -> HttpResponse + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let handler = Arc::new(handler);
        let handle = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let handler = handler.clone();
                        std::thread::spawn(move || handle_connection(stream, handler.as_ref()));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(HttpServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the server and join its thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn handle_connection<F>(stream: TcpStream, handler: &F)
where
    F: Fn(HttpRequest) -> HttpResponse,
{
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let response = match HttpRequest::parse(&mut reader) {
        Some(request) => handler(request),
        None => HttpResponse::bad_request("malformed request"),
    };
    let mut stream = stream;
    let _ = stream.write_all(&response.encode());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_get_with_query_and_headers() {
        let raw = b"GET /api/poll?since=3&client=a%20b HTTP/1.1\r\nHost: x\r\nX-Test: 1\r\n\r\n";
        let mut cursor = Cursor::new(raw.to_vec());
        let req = HttpRequest::parse(&mut cursor).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/api/poll");
        assert_eq!(req.query_param("since"), Some("3"));
        assert_eq!(req.query_param("client"), Some("a b"));
        assert_eq!(req.headers.get("x-test").map(String::as_str), Some("1"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_body_with_content_length() {
        let raw = b"POST /api/steer HTTP/1.1\r\nContent-Length: 11\r\n\r\n{\"cfl\":0.2}";
        let mut cursor = Cursor::new(raw.to_vec());
        let req = HttpRequest::parse(&mut cursor).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{\"cfl\":0.2}");
    }

    #[test]
    fn malformed_requests_are_rejected() {
        let mut cursor = Cursor::new(b"".to_vec());
        assert!(HttpRequest::parse(&mut cursor).is_none());
    }

    #[test]
    fn query_decoding_handles_plus_and_percent() {
        let q = parse_query("a=1+2&b=%41%20c&flag");
        assert_eq!(q.get("a").unwrap(), "1 2");
        assert_eq!(q.get("b").unwrap(), "A c");
        assert_eq!(q.get("flag").unwrap(), "");
        assert!(parse_query("").is_empty());
    }

    #[test]
    fn response_encoding_includes_length_and_body() {
        let resp = HttpResponse::ok("text/plain", "hello");
        let wire = String::from_utf8(resp.encode()).unwrap();
        assert!(wire.starts_with("HTTP/1.1 200 OK"));
        assert!(wire.contains("Content-Length: 5"));
        assert!(wire.ends_with("hello"));
        assert_eq!(HttpResponse::not_found().status, 404);
        assert_eq!(HttpResponse::bad_request("x").status, 400);
        let json = HttpResponse::json(&serde_json::json!({"ok": true}));
        assert_eq!(json.content_type, "application/json");
    }

    #[test]
    fn server_round_trip_over_a_real_socket() {
        use std::io::Read;
        let server = HttpServer::start("127.0.0.1:0", |req| {
            HttpResponse::ok("text/plain", format!("you asked for {}", req.path))
        })
        .unwrap();
        let addr = server.addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /hello HTTP/1.1\r\nHost: localhost\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.contains("200 OK"));
        assert!(response.contains("you asked for /hello"));
        server.shutdown();
    }
}
