//! The session hub: frames out, steering commands in — encoded exactly once.
//!
//! The hub is the piece that makes the front end both "Ajax" and scalable:
//!
//! * **Publish → encode once.**  When the visualization side publishes a
//!   frame, the hub base64/JSON-encodes it *once* into a shared `Arc<str>`
//!   payload ([`FramePayload`]).  Every poller — one browser or a thousand —
//!   receives a clone of the same `Arc`; per-client cost is a lookup plus a
//!   reference-count bump, never a re-encode.  [`SessionHub::encode_count`]
//!   certifies this (it grows with publishes, not with pollers).
//! * **Delta frames.**  Alongside the full payload, publish computes the
//!   changed-tile difference to the *previous* frame ([`diff_images`]) and
//!   caches a delta payload.  A poller that is exactly one frame behind and
//!   asks for [`PollMode::Delta`] receives only the tiles that changed —
//!   the paper's "partial screen updates" carried through to the wire.  The
//!   delta is kept only when it is smaller than the full payload, and any
//!   poller further behind (or a resized frame) silently falls back to the
//!   full frame, so delta mode is never worse and always exact:
//!   [`apply_delta`] reconstructs the full frame bit-for-bit.
//! * **Delta chains.**  A poller `k` frames behind (2 ≤ `k` ≤
//!   [`MAX_DELTA_CHAIN`]) receives the *composition* of the cached per-step
//!   deltas — the union of changed tiles with the newest version of each
//!   tile winning — instead of a full frame.  Because every step's delta is
//!   cut on the same tile grid, composing patches keyed by tile origin is
//!   exactly equivalent to applying the steps one by one.  Compositions are
//!   encoded once per `(since, head)` pair and shared, so encode work stays
//!   bounded by the chain length, never by the poller count.
//! * **Lock-free reads.**  The published frame ring lives behind an
//!   atomic-pointer snapshot (the `arc_swap` shim): pollers read payloads
//!   with zero locks while publishers swap in a new ring.  Per-client
//!   cursors are sharded across [`CURSOR_SHARDS`] small maps so cursor
//!   traffic from thousands of clients does not serialize on one mutex
//!   (eviction still finds the *globally* stalest client).
//! * **Wire compression.**  Full frames and delta tiles are run-length
//!   coded (the `rle` shim, pixel-granular PackBits) before base64 whenever
//!   that shrinks them; the `codec`/`rle` JSON fields tell the client to
//!   decompress.  Rendered frames are dominated by flat background, so this
//!   stacks multiplicatively with the delta saving.
//! * **Per-client cursors.**  Clients may register ([`SessionHub::register_client`])
//!   and let the hub remember their last-delivered sequence, instead of
//!   carrying `since` themselves.  The registry is bounded: at capacity the
//!   stalest client (oldest activity) is evicted and simply re-registers on
//!   its next poll — slow pollers cannot pin hub memory.
//!
//! Steering commands posted by clients are queued in a [`SteeringInbox`]
//! for the simulation side to drain between cycles.
//!
//! See DESIGN.md §7 for the state machine and the delta exactness argument,
//! and §10 for the snapshot/shard invariants.

use arc_swap::ArcSwap;
use parking_lot::{Condvar, Mutex};
use ricsa_hydro::steering::SteerableParams;
use ricsa_viz::image::Image;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Tile edge length (pixels) used for delta frames.
pub const DELTA_TILE: usize = 32;

/// Longest delta chain composed for a lagging poller: a client more than
/// this many frames behind receives a full frame instead.  Bounds both the
/// tile-merge work per composition and the number of distinct
/// `(since, head)` compositions the hub can be asked to encode per publish.
pub const MAX_DELTA_CHAIN: u64 = 8;

/// Number of cursor shards; client ids map to shards by `id %` this.
pub const CURSOR_SHARDS: usize = 16;

/// One published frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Monotone frame number.
    pub sequence: u64,
    /// Simulation cycle the frame was produced from.
    pub cycle: u64,
    /// Physical simulation time.
    pub time: f64,
    /// The rendered image encoded with `Image::encode_raw` (RICSAIMG).
    pub image: Vec<u8>,
    /// Monitored scalar statistics shown next to the image
    /// (name → value), e.g. max pressure or total mass.
    pub monitors: Vec<(String, f64)>,
}

/// Which wire encoding a poller asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollMode {
    /// Always the complete frame.
    Full,
    /// The changed-tile delta when the poller is exactly one frame behind
    /// and a delta is cached; the full frame otherwise.
    Delta,
}

/// A ready-to-serve poll response: the shared JSON payload for one frame.
#[derive(Debug, Clone)]
pub struct FramePayload {
    /// Sequence number of the frame this payload carries the client to.
    pub sequence: u64,
    /// The JSON body, shared across every client that receives this frame.
    pub json: Arc<str>,
    /// Whether this is the delta encoding (tiles only) or the full frame.
    pub is_delta: bool,
}

// ---------------------------------------------------------------- base64

/// Base64 encoding (standard alphabet, with padding) for frame payloads.
pub fn base64_encode(data: &[u8]) -> String {
    const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [
            chunk[0],
            *chunk.get(1).unwrap_or(&0),
            *chunk.get(2).unwrap_or(&0),
        ];
        let n = ((b[0] as u32) << 16) | ((b[1] as u32) << 8) | b[2] as u32;
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Decode standard base64 (the inverse of [`base64_encode`]); `None` on
/// any non-alphabet byte or truncated quantum.
pub fn base64_decode(s: &str) -> Option<Vec<u8>> {
    fn value(c: u8) -> Option<u32> {
        match c {
            b'A'..=b'Z' => Some((c - b'A') as u32),
            b'a'..=b'z' => Some((c - b'a' + 26) as u32),
            b'0'..=b'9' => Some((c - b'0' + 52) as u32),
            b'+' => Some(62),
            b'/' => Some(63),
            _ => None,
        }
    }
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return None;
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for chunk in bytes.chunks(4) {
        let pad = chunk.iter().filter(|&&c| c == b'=').count();
        if pad > 2 || chunk[..4 - pad].contains(&b'=') {
            return None;
        }
        let mut n: u32 = 0;
        for &c in &chunk[..4 - pad] {
            n = (n << 6) | value(c)?;
        }
        n <<= 6 * pad as u32;
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Some(out)
}

// ------------------------------------------------------------ delta tiles

/// One changed tile: rectangle origin and size in pixels, plus its raw
/// RGBA bytes (row-major within the rectangle).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TilePatch {
    /// Left edge of the rectangle.
    pub x: usize,
    /// Top edge of the rectangle.
    pub y: usize,
    /// Rectangle width (≤ [`DELTA_TILE`]; smaller at the right edge).
    pub w: usize,
    /// Rectangle height (≤ [`DELTA_TILE`]; smaller at the bottom edge).
    pub h: usize,
    /// Raw RGBA bytes of the rectangle.
    pub data: Vec<u8>,
}

/// The changed-tile difference between two equally-sized images.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameDelta {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Tile edge length the grid was cut with.
    pub tile: usize,
    /// Tiles whose bytes differ, in row-major tile order.
    pub tiles: Vec<TilePatch>,
}

/// Cut both images into a `tile`×`tile` grid and collect the tiles whose
/// bytes differ.  `None` when the images are not the same size (a resize
/// must ship a full frame).
pub fn diff_images(prev: &Image, cur: &Image, tile: usize) -> Option<FrameDelta> {
    if prev.width != cur.width || prev.height != cur.height || tile == 0 {
        return None;
    }
    let mut tiles = Vec::new();
    let mut y = 0;
    while y < cur.height {
        let h = tile.min(cur.height - y);
        let mut x = 0;
        while x < cur.width {
            let w = tile.min(cur.width - x);
            let mut changed = false;
            for row in y..y + h {
                let start = (row * cur.width + x) * 4;
                let end = start + w * 4;
                if prev.pixels[start..end] != cur.pixels[start..end] {
                    changed = true;
                    break;
                }
            }
            if changed {
                let mut data = Vec::with_capacity(w * h * 4);
                for row in y..y + h {
                    let start = (row * cur.width + x) * 4;
                    data.extend_from_slice(&cur.pixels[start..start + w * 4]);
                }
                tiles.push(TilePatch { x, y, w, h, data });
            }
            x += tile;
        }
        y += tile;
    }
    Some(FrameDelta {
        width: cur.width,
        height: cur.height,
        tile,
        tiles,
    })
}

/// Apply a delta to the frame it was computed against, reconstructing the
/// successor frame exactly (`apply_delta(prev, diff(prev, cur)) == cur`).
pub fn apply_delta(prev: &Image, delta: &FrameDelta) -> Image {
    let mut out = prev.clone();
    for patch in &delta.tiles {
        let mut offset = 0;
        for row in patch.y..patch.y + patch.h {
            let start = (row * out.width + patch.x) * 4;
            out.pixels[start..start + patch.w * 4]
                .copy_from_slice(&patch.data[offset..offset + patch.w * 4]);
            offset += patch.w * 4;
        }
    }
    out
}

/// Parse a delta poll response (the wire JSON produced by the hub) back
/// into its base sequence and [`FrameDelta`].  Used by tests and clients
/// that reconstruct frames outside a browser.
pub fn delta_from_json(value: &serde_json::Value) -> Option<(u64, FrameDelta)> {
    if value.get("mode")?.as_str()? != "delta" {
        return None;
    }
    let base = value.get("base_sequence")?.as_u64()?;
    let width = value.get("width")?.as_u64()? as usize;
    let height = value.get("height")?.as_u64()? as usize;
    let tile = value.get("tile")?.as_u64()? as usize;
    let mut tiles = Vec::new();
    for t in value.get("tiles")?.as_array()? {
        let raw = base64_decode(t.get("data_base64")?.as_str()?)?;
        let data = if t.get("rle").and_then(|r| r.as_bool()) == Some(true) {
            rle::decompress(&raw)?
        } else {
            raw
        };
        tiles.push(TilePatch {
            x: t.get("x")?.as_u64()? as usize,
            y: t.get("y")?.as_u64()? as usize,
            w: t.get("w")?.as_u64()? as usize,
            h: t.get("h")?.as_u64()? as usize,
            data,
        });
    }
    Some((
        base,
        FrameDelta {
            width,
            height,
            tile,
            tiles,
        },
    ))
}

// -------------------------------------------------------------- encoding

fn frame_header_json(frame: &Frame, epoch: u64) -> serde_json::Value {
    serde_json::json!({
        "sequence": frame.sequence,
        "cycle": frame.cycle,
        "time": frame.time,
        "monitors": frame.monitors,
        "epoch": epoch,
    })
}

/// JSON-encode a complete frame (mode `full`) stamped with the hub's
/// `epoch`.  This is the work the encode cache performs exactly once per
/// publish; the `webfront_bench` criterion bench calls it directly to
/// price the per-client-encode alternative.
///
/// The image bytes are run-length compressed before base64 whenever that
/// shrinks them, signalled by `"codec":"rle"`; incompressible frames ship
/// raw with no `codec` field, so compression is never a regression.
pub fn encode_frame_full(frame: &Frame, epoch: u64) -> String {
    let mut value = frame_header_json(frame, epoch);
    if let serde_json::Value::Object(map) = &mut value {
        map.insert("mode".into(), serde_json::json!("full"));
        let packed = rle::compress(&frame.image);
        if packed.len() < frame.image.len() {
            map.insert("codec".into(), serde_json::json!("rle"));
            map.insert(
                "image_base64".into(),
                serde_json::json!(base64_encode(&packed)),
            );
        } else {
            map.insert(
                "image_base64".into(),
                serde_json::json!(base64_encode(&frame.image)),
            );
        }
    }
    value.to_string()
}

/// Recover the raw image bytes (RICSAIMG framing) carried by a full-frame
/// payload, undoing base64 and the optional `"codec":"rle"` compression.
/// The decoding inverse of [`encode_frame_full`]; `None` on a malformed
/// payload.  Tests and non-browser clients use this instead of assuming
/// the wire representation.
pub fn image_from_json(value: &serde_json::Value) -> Option<Vec<u8>> {
    let bytes = base64_decode(value.get("image_base64")?.as_str()?)?;
    match value.get("codec").and_then(|c| c.as_str()) {
        Some("rle") => rle::decompress(&bytes),
        Some(_) => None, // unknown codec: do not misread the bytes
        None => Some(bytes),
    }
}

/// JSON-encode a delta frame (mode `delta`) against `base_sequence`,
/// stamped with the hub's `epoch`.
///
/// Each tile's bytes are run-length compressed before base64 whenever that
/// shrinks them, marked per-tile with `"rle":true` — a tile of turbulent
/// pixels ships raw while its flat neighbours compress, so the delta is
/// never larger for having the codec available.
pub fn encode_frame_delta(
    frame: &Frame,
    epoch: u64,
    base_sequence: u64,
    delta: &FrameDelta,
) -> String {
    let tiles: Vec<serde_json::Value> = delta
        .tiles
        .iter()
        .map(|t| {
            let packed = rle::compress(&t.data);
            if packed.len() < t.data.len() {
                serde_json::json!({
                    "x": t.x,
                    "y": t.y,
                    "w": t.w,
                    "h": t.h,
                    "rle": true,
                    "data_base64": base64_encode(&packed),
                })
            } else {
                serde_json::json!({
                    "x": t.x,
                    "y": t.y,
                    "w": t.w,
                    "h": t.h,
                    "data_base64": base64_encode(&t.data),
                })
            }
        })
        .collect();
    let mut value = frame_header_json(frame, epoch);
    if let serde_json::Value::Object(map) = &mut value {
        map.insert("mode".into(), serde_json::json!("delta"));
        map.insert("base_sequence".into(), serde_json::json!(base_sequence));
        map.insert("width".into(), serde_json::json!(delta.width));
        map.insert("height".into(), serde_json::json!(delta.height));
        map.insert("tile".into(), serde_json::json!(delta.tile));
        map.insert("tiles".into(), serde_json::Value::Array(tiles));
    }
    value.to_string()
}

// ------------------------------------------------------------------- hub

/// One frame with its cached wire encodings.
struct CachedFrame {
    frame: Frame,
    /// Full-frame payload, encoded once at publish.
    full: Arc<str>,
    /// Delta payload against the immediately preceding sequence number;
    /// `None` for the first frame, after a resize, or when the delta would
    /// not be meaningfully smaller than the full payload.
    delta: Option<Arc<str>>,
    /// The raw (un-encoded) tile difference against the immediately
    /// preceding sequence, kept for chain composition — present even when
    /// the encoded single-step delta was discarded as unprofitable, since
    /// a *composed* chain containing this step may still win.
    delta_raw: Option<FrameDelta>,
}

/// An immutable snapshot of the published frames, swapped atomically on
/// every publish.  Pollers read it via [`ArcSwap::load_full`] — no lock —
/// so payload lookups never contend with publishers or each other.
struct FrameRing {
    /// Retained frames in ascending sequence order (shared with the
    /// publisher's working copy; cloning the ring clones `Arc`s, not
    /// payloads).
    frames: Vec<Arc<CachedFrame>>,
    /// The newest sequence number pollers may see: everything at or below
    /// it is fully inserted.  Frames above it belong to publishers still
    /// encoding — handing them out early would let a poller advance its
    /// cursor past a frame that has not landed yet and lose it forever.
    visible: u64,
}

/// Publisher-side mutable state, touched only on publish (never by
/// pollers): sequence assignment, the in-flight claim set, the diff base,
/// and the working copy of the frame list from which ring snapshots are
/// cut.
struct PubState {
    latest_sequence: u64,
    /// Sequence numbers claimed by publishers still encoding outside the
    /// lock; the ring's `visible` stops just below the smallest claim.
    in_flight: BTreeSet<u64>,
    /// Decoded image of the most recently published frame, kept so the
    /// next publish can diff against it without re-decoding (and without
    /// holding any lock while it does).
    last_image: Option<(u64, Image)>,
    /// Working frame list, ascending by sequence; cloned (shallowly) into
    /// each [`FrameRing`] snapshot.
    frames: Vec<Arc<CachedFrame>>,
    capacity: usize,
}

struct ClientState {
    cursor: u64,
    /// Logical activity stamp (monotone counter, not wall-clock) — the
    /// smallest stamp is the stalest client, evicted first.
    last_touch: u64,
    /// A computed-but-unconfirmed delivery: `(connection, sequence)` of
    /// the latest poll response handed to the HTTP layer.  It commits
    /// into `cursor` only when the client's *next* poll arrives on the
    /// same connection (proof the response was read); a next poll from a
    /// different connection drops it, so a response that died with its
    /// connection is re-delivered instead of silently skipped.
    staged: Option<(u64, u64)>,
}

/// One shard of the client-cursor registry.  Ids map to shards by
/// `id % CURSOR_SHARDS`, so cursor reads/updates from different clients
/// almost never share a mutex.
#[derive(Default)]
struct CursorShard {
    clients: HashMap<u64, ClientState>,
}

/// Composed-delta memo: `(since, head)` → encoded payload, or `None` for
/// a composition tried and found unprofitable.
type ComposeCache = HashMap<(u64, u64), Option<Arc<str>>>;

/// Everything a [`SessionHub`] handle points at.
struct HubInner {
    /// The lock-free read path: the current frame snapshot.
    ring: ArcSwap<FrameRing>,
    /// The publish path (see [`PubState`]); pollers never take this.
    publisher: Mutex<PubState>,
    /// Sharded client cursors, [`CURSOR_SHARDS`] of them.
    cursors: Vec<Mutex<CursorShard>>,
    next_client: AtomicU64,
    /// Registered-client count across all shards (kept by the mutators so
    /// eviction and `client_count` need not sum shard sizes under locks).
    client_total: AtomicUsize,
    /// Global logical clock for activity stamps; comparable across shards
    /// so eviction can find the *globally* stalest client.
    clock: AtomicU64,
    max_clients: usize,
    /// Total encode passes (full + single-step delta + composed delta).
    encodes: AtomicU64,
    /// Instance marker stamped into every payload: a client holding state
    /// from a previous server incarnation sees the epoch change and knows
    /// its pixel buffer and `since` cursor are stale (a delta against
    /// another epoch must never be applied).  Immutable after creation.
    epoch: u64,
    /// Composed-delta cache, keyed `(since, head)`; cleared on publish.
    /// `None` records a composition that was tried and found unprofitable,
    /// so it is not re-attempted for every poller at the same lag.  The
    /// lock is *held through the encode* so racing pollers at the same lag
    /// share one composition instead of encoding it N times.
    compose: Mutex<ComposeCache>,
    /// Callbacks run after every publish, once the new ring snapshot is
    /// visible — the server wires the HTTP [`crate::Waker`] doorbell here.
    wake_hooks: Mutex<Vec<Box<dyn Fn() + Send + Sync>>>,
    /// Pairs with `wait_cvar` for [`SessionHub::poll_after`].  Publishers
    /// acquire it (empty critical section) between storing the ring and
    /// notifying, which closes the missed-wakeup window: a waiter checks
    /// the ring *while holding it*, so the publisher cannot slip its
    /// notify between the waiter's check and its wait.
    wait_lock: Mutex<()>,
    wait_cvar: Condvar,
}

impl FrameRing {
    /// The oldest retained frame newer than `since` that is visible.
    fn first_after(&self, since: u64) -> Option<&Arc<CachedFrame>> {
        self.frames
            .iter()
            .find(|c| c.frame.sequence > since && c.frame.sequence <= self.visible)
    }

    /// The newest visible frame.
    fn newest(&self) -> Option<&Arc<CachedFrame>> {
        self.frames
            .iter()
            .rev()
            .find(|c| c.frame.sequence <= self.visible)
    }
}

/// The frame hub shared between the visualization side and HTTP handlers.
#[derive(Clone)]
pub struct SessionHub {
    inner: Arc<HubInner>,
}

impl Default for SessionHub {
    fn default() -> Self {
        SessionHub::new(32)
    }
}

impl SessionHub {
    /// A hub retaining up to `capacity` recent frames (client registry
    /// bounded at 1024).
    pub fn new(capacity: usize) -> Self {
        SessionHub::with_limits(capacity, 1024)
    }

    /// A hub retaining up to `capacity` frames and at most `max_clients`
    /// registered client cursors (the stalest is evicted beyond that).
    pub fn with_limits(capacity: usize, max_clients: usize) -> Self {
        SessionHub {
            inner: Arc::new(HubInner {
                ring: ArcSwap::from_pointee(FrameRing {
                    frames: Vec::new(),
                    visible: 0,
                }),
                publisher: Mutex::new(PubState {
                    latest_sequence: 0,
                    in_flight: BTreeSet::new(),
                    last_image: None,
                    frames: Vec::new(),
                    capacity: capacity.max(1),
                }),
                cursors: (0..CURSOR_SHARDS).map(|_| Mutex::default()).collect(),
                next_client: AtomicU64::new(1),
                client_total: AtomicUsize::new(0),
                clock: AtomicU64::new(0),
                max_clients: max_clients.max(1),
                encodes: AtomicU64::new(0),
                // Keep the epoch within f64's exact-integer range (2^53):
                // JSON numbers — and the serde shim's Value — are doubles,
                // and a corrupted epoch would defeat the restart detection
                // it exists for.
                epoch: (std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_nanos() as u64)
                    .unwrap_or(1)
                    & ((1 << 53) - 1))
                    .max(1),
                compose: Mutex::new(HashMap::new()),
                wake_hooks: Mutex::new(Vec::new()),
                wait_lock: Mutex::new(()),
                wait_cvar: Condvar::new(),
            }),
        }
    }

    /// Register a callback run after every publish, once the new frame is
    /// readable through the hub.  The readiness serving core registers the
    /// HTTP server's [`crate::Waker`] here, so parked long-polls are woken
    /// the moment a frame lands.  Hooks must be cheap and must not call
    /// back into the hub.
    pub fn add_wake_hook(&self, hook: impl Fn() + Send + Sync + 'static) {
        self.inner.wake_hooks.lock().push(Box::new(hook));
    }

    /// Publish a frame; it is assigned the next sequence number, which is
    /// returned.  The full payload — and, when profitable, the delta
    /// against the previous frame — is encoded here, exactly once, no
    /// matter how many clients will poll it.  Waiting pollers are woken.
    ///
    /// The encode/diff work happens *outside* the publisher lock (pollers
    /// read the previous ring snapshot, lock-free, while a frame is
    /// encoded); only sequence assignment and the snapshot swap hold it.
    pub fn publish(&self, mut frame: Frame) -> u64 {
        let inner = &*self.inner;

        // Lock 1: claim a sequence number (marked in-flight so pollers are
        // not handed a later frame first) and take the predecessor's
        // decoded image for the diff.
        let (seq, prev_image) = {
            let mut publisher = inner.publisher.lock();
            publisher.latest_sequence += 1;
            let seq = publisher.latest_sequence;
            publisher.in_flight.insert(seq);
            (seq, publisher.last_image.take())
        };
        frame.sequence = seq;

        // Encode without any lock held.
        let full: Arc<str> = Arc::from(encode_frame_full(&frame, inner.epoch).as_str());
        let cur_image = Image::decode_raw(&frame.image);
        let mut delta_encodes = 0u64;
        let delta_raw = prev_image
            .filter(|(prev_seq, _)| *prev_seq == seq - 1)
            .zip(cur_image.as_ref())
            .and_then(|((_, prev_img), cur_img)| diff_images(&prev_img, cur_img, DELTA_TILE));
        let delta = delta_raw
            .as_ref()
            .map(|delta| {
                delta_encodes = 1; // real work even if discarded below
                encode_frame_delta(&frame, inner.epoch, seq - 1, delta)
            })
            // A delta that is not meaningfully smaller than the full frame
            // (most of the screen changed) is not worth caching or
            // shipping: require at least a 10% saving.
            .filter(|json| json.len() * 10 <= full.len() * 9)
            .map(|json| Arc::from(json.as_str()));
        inner
            .encodes
            .fetch_add(1 + delta_encodes, Ordering::Relaxed);
        let cached = Arc::new(CachedFrame {
            frame,
            full,
            delta,
            delta_raw,
        });

        // Lock 2: insert in sequence order (a racing publisher may have
        // inserted a later frame while we encoded) and swap in the new
        // ring snapshot.
        {
            let mut publisher = inner.publisher.lock();
            publisher.in_flight.remove(&seq);
            let at = publisher.frames.partition_point(|c| c.frame.sequence < seq);
            publisher.frames.insert(at, cached);
            if publisher.frames.len() > publisher.capacity {
                let excess = publisher.frames.len() - publisher.capacity;
                publisher.frames.drain(..excess);
            }
            if let Some(cur) = cur_image {
                // Keep the newest decoded image as the next diff base
                // (racing publishers: only the latest sequence wins).
                if publisher.last_image.as_ref().is_none_or(|(s, _)| *s < seq) {
                    publisher.last_image = Some((seq, cur));
                }
            }
            let visible = match publisher.in_flight.iter().next() {
                Some(&oldest_claim) => oldest_claim - 1,
                None => publisher.latest_sequence,
            };
            inner.ring.store(Arc::new(FrameRing {
                frames: publisher.frames.clone(),
                visible,
            }));
            // Compositions target the previous head; drop them (bounded
            // memory, and stale entries would only be asked for once more
            // anyway).
            inner.compose.lock().clear();
        }

        // Wake waiting pollers.  Taking wait_lock (and releasing it empty)
        // orders the ring store above before any waiter's re-check: a
        // waiter holding the lock has either already seen the new ring or
        // is inside wait_for and will be notified.
        drop(inner.wait_lock.lock());
        inner.wait_cvar.notify_all();
        for hook in inner.wake_hooks.lock().iter() {
            hook();
        }
        seq
    }

    /// The sequence number of the most recent fully published frame
    /// (0 if none yet).  Sequence numbers claimed by publishers still
    /// encoding are not reported — they are not yet observable.
    pub fn latest_sequence(&self) -> u64 {
        self.inner.ring.load_full().visible
    }

    /// The most recent (fully published) frame, if any.
    pub fn latest_frame(&self) -> Option<Frame> {
        self.inner
            .ring
            .load_full()
            .newest()
            .map(|c| c.frame.clone())
    }

    /// The hub's instance marker, stamped into every payload (`epoch`
    /// field).  Clients must discard retained frame state when it changes:
    /// a delta from one epoch is meaningless against pixels of another.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch
    }

    /// Total encode passes performed (full + per-step delta + composed
    /// delta).  Grows with publishes — plus at most [`MAX_DELTA_CHAIN`]
    /// compositions per publish — never with pollers: the invariant the
    /// encode cache exists to provide.
    pub fn encode_count(&self) -> u64 {
        self.inner.encodes.load(Ordering::Relaxed)
    }

    /// The full payload of the newest visible frame, if any.
    pub fn latest_payload(&self) -> Option<FramePayload> {
        self.inner
            .ring
            .load_full()
            .newest()
            .map(|cached| FramePayload {
                sequence: cached.frame.sequence,
                json: cached.full.clone(),
                is_delta: false,
            })
    }

    /// The shared payload for a frame newer than `since`, without waiting.
    /// Reads the current ring snapshot lock-free.
    ///
    /// [`PollMode::Full`] (and a client exactly at the head) always gets
    /// the oldest visible frame newer than `since`, as a full payload.
    /// [`PollMode::Delta`] serves, in order of preference: the cached
    /// single-step delta when the client is exactly one frame behind; the
    /// *composed* delta chain carrying it straight to the newest frame
    /// when it is 2..=[`MAX_DELTA_CHAIN`] behind and every step's tile
    /// difference is available; the full frame otherwise.  Compositions
    /// are encoded once per `(since, head)` pair and shared.
    pub fn try_payload(&self, since: u64, mode: PollMode) -> Option<FramePayload> {
        let ring = self.inner.ring.load_full();
        let cached = ring.first_after(since)?;
        let sequence = cached.frame.sequence;
        if mode == PollMode::Delta {
            // first_after succeeded, so visible > since and lag >= 1.
            let lag = ring.visible - since;
            if (2..=MAX_DELTA_CHAIN).contains(&lag) {
                if let Some(payload) = self.composed_delta(&ring, since) {
                    return Some(payload);
                }
            }
            if lag > MAX_DELTA_CHAIN {
                // Too far behind to compose: resync with the newest full
                // frame in one hop instead of replaying stale frames.
                return ring.newest().map(|newest| FramePayload {
                    sequence: newest.frame.sequence,
                    json: newest.full.clone(),
                    is_delta: false,
                });
            }
            // One behind (or an unprofitable/incomplete chain): step with
            // the cached per-publish delta when there is one.
            if sequence == since + 1 {
                if let Some(delta) = &cached.delta {
                    return Some(FramePayload {
                        sequence,
                        json: delta.clone(),
                        is_delta: true,
                    });
                }
            }
        }
        Some(FramePayload {
            sequence,
            json: cached.full.clone(),
            is_delta: false,
        })
    }

    /// Compose the per-step deltas `since+1..=head` into one merged delta
    /// payload (newest version of each tile wins), encoded at most once
    /// per `(since, head)` pair.  `None` when the chain is too long or too
    /// short, any step is missing its raw delta (first frame, resize,
    /// evicted), geometries differ, or the composition is not meaningfully
    /// smaller than the head's full payload.
    fn composed_delta(&self, ring: &FrameRing, since: u64) -> Option<FramePayload> {
        let inner = &*self.inner;
        let head = ring.visible;
        let lag = head.checked_sub(since)?;
        if !(2..=MAX_DELTA_CHAIN).contains(&lag) {
            return None;
        }
        // Collect the contiguous steps since+1..=head; every one must be
        // retained and carry a raw delta on the same geometry.
        let start = ring.frames.partition_point(|c| c.frame.sequence <= since);
        let steps = &ring.frames[start..];
        let mut chain = Vec::with_capacity(lag as usize);
        for (offset, want) in (since + 1..=head).enumerate() {
            let step = steps.get(offset)?;
            if step.frame.sequence != want {
                return None;
            }
            chain.push((step, step.delta_raw.as_ref()?));
        }
        let (_, first) = chain[0];
        if chain.iter().any(|(_, d)| {
            d.width != first.width || d.height != first.height || d.tile != first.tile
        }) {
            return None;
        }

        let mut cache = inner.compose.lock();
        if let Some(entry) = cache.get(&(since, head)) {
            return entry.as_ref().map(|json| FramePayload {
                sequence: head,
                json: json.clone(),
                is_delta: true,
            });
        }
        // Merge: tiles are keyed by their grid origin (every step is cut
        // on the same grid), so replacing older versions of a tile with
        // newer ones is exactly equivalent to applying the steps in order.
        let mut merged: HashMap<(usize, usize), &TilePatch> = HashMap::new();
        for (_, delta) in &chain {
            for tile in &delta.tiles {
                merged.insert((tile.x, tile.y), tile);
            }
        }
        let mut tiles: Vec<TilePatch> = merged.into_values().cloned().collect();
        tiles.sort_by_key(|t| (t.y, t.x));
        let composed = FrameDelta {
            width: first.width,
            height: first.height,
            tile: first.tile,
            tiles,
        };
        let (head_frame, _) = chain[lag as usize - 1];
        let json = encode_frame_delta(&head_frame.frame, inner.epoch, since, &composed);
        inner.encodes.fetch_add(1, Ordering::Relaxed);
        // Same profitability rule as single-step deltas: a composition
        // within 10% of the full payload is not worth shipping, and the
        // verdict is cached so other pollers at this lag skip the attempt.
        let entry: Option<Arc<str>> = if json.len() * 10 <= head_frame.full.len() * 9 {
            Some(Arc::from(json.as_str()))
        } else {
            None
        };
        cache.insert((since, head), entry.clone());
        entry.map(|json| FramePayload {
            sequence: head,
            json,
            is_delta: true,
        })
    }

    /// Long-poll: return the oldest retained frame newer than `since`,
    /// waiting up to `timeout` for one to be published.  `None` on timeout —
    /// the client simply re-polls, exactly like an `XMLHttpRequest` loop.
    pub fn poll_after(&self, since: u64, timeout: Duration) -> Option<Frame> {
        let inner = &*self.inner;
        let deadline = std::time::Instant::now() + timeout;
        let mut guard = inner.wait_lock.lock();
        loop {
            // Check while holding wait_lock: the publisher stores the ring
            // *before* acquiring it to notify, so a snapshot read here is
            // either current or the notify is still coming.
            if let Some(cached) = inner.ring.load_full().first_after(since) {
                return Some(cached.frame.clone());
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            inner.wait_cvar.wait_for(&mut guard, deadline - now);
        }
    }

    // ------------------------------------------------------ client cursors

    /// The cursor shard a client id lives in.
    fn shard(&self, client: u64) -> &Mutex<CursorShard> {
        &self.inner.cursors[(client % CURSOR_SHARDS as u64) as usize]
    }

    /// Register a polling client; returns its id.  The cursor starts at 0
    /// (the next poll delivers the oldest retained frame).  At
    /// `max_clients` the stalest registered client is evicted to make room.
    pub fn register_client(&self) -> u64 {
        let inner = &*self.inner;
        let id = inner.next_client.fetch_add(1, Ordering::Relaxed);
        let stamp = inner.clock.fetch_add(1, Ordering::Relaxed);
        self.shard(id).lock().clients.insert(
            id,
            ClientState {
                cursor: 0,
                last_touch: stamp,
                staged: None,
            },
        );
        inner.client_total.fetch_add(1, Ordering::Relaxed);
        self.evict_to_capacity();
        id
    }

    /// Evict globally-stalest clients until the registry fits.  Scans all
    /// shards for the minimum activity stamp without holding more than one
    /// shard lock at a time; a client touched between the scan and the
    /// removal is spared and the scan repeats.
    fn evict_to_capacity(&self) {
        let inner = &*self.inner;
        while inner.client_total.load(Ordering::Relaxed) > inner.max_clients {
            let mut stalest: Option<(u64, u64, usize)> = None; // (stamp, id, shard)
            for (index, shard) in inner.cursors.iter().enumerate() {
                let shard = shard.lock();
                for (&id, client) in shard.clients.iter() {
                    if stalest.is_none_or(|(stamp, _, _)| client.last_touch < stamp) {
                        stalest = Some((client.last_touch, id, index));
                    }
                }
            }
            let Some((stamp, id, index)) = stalest else {
                return; // registry empty; nothing to evict
            };
            let mut shard = inner.cursors[index].lock();
            if shard
                .clients
                .get(&id)
                .is_some_and(|c| c.last_touch == stamp)
            {
                shard.clients.remove(&id);
                drop(shard);
                inner.client_total.fetch_sub(1, Ordering::Relaxed);
            }
            // else: raced with a touch or another evictor — rescan.
        }
    }

    /// The stored cursor for `client`, refreshing its activity stamp.
    /// `None` when the client is unknown (never registered, or evicted as
    /// stale — it should re-register).
    pub fn client_cursor(&self, client: u64) -> Option<u64> {
        let stamp = self.inner.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(client).lock();
        let entry = shard.clients.get_mut(&client)?;
        entry.last_touch = stamp;
        Some(entry.cursor)
    }

    /// Record that `client` provably holds frame `sequence` (cursors only
    /// move forward).  Unknown ids are ignored — an evicted client keeps
    /// polling statelessly until it re-registers.
    ///
    /// Cursors are *delivery-acknowledged*: this is called when the
    /// client presents evidence of possession (an explicit `since` on a
    /// later poll), while a freshly computed response is only *staged*
    /// ([`SessionHub::stage_cursor`]) until the next poll confirms it
    /// ([`SessionHub::ack_poll`]).  A frame whose response dies with the
    /// connection is therefore re-delivered, never silently skipped.
    pub fn update_cursor(&self, client: u64, sequence: u64) {
        let stamp = self.inner.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(client).lock();
        if let Some(entry) = shard.clients.get_mut(&client) {
            entry.cursor = entry.cursor.max(sequence);
            entry.last_touch = stamp;
        }
    }

    /// Stage a computed-but-unconfirmed delivery of frame `sequence` to
    /// `client` over `connection`.  The cursor itself does not move; the
    /// stage commits on the client's next poll from the same connection
    /// (advance-on-next-poll) and is dropped — forcing re-delivery — if
    /// the next poll arrives on a different connection, which is exactly
    /// what happens when a response dies with its socket.
    pub fn stage_cursor(&self, client: u64, connection: u64, sequence: u64) {
        let stamp = self.inner.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(client).lock();
        if let Some(entry) = shard.clients.get_mut(&client) {
            entry.staged = match entry.staged {
                // Same connection: responses are serialized on it, so a
                // later stage supersedes (and implies receipt of) an
                // earlier one — keep the maximum to stay monotone.
                Some((conn, seq)) if conn == connection => Some((connection, seq.max(sequence))),
                _ => Some((connection, sequence)),
            };
            entry.last_touch = stamp;
        }
    }

    /// A poll from `client` arrived on `connection`: resolve any staged
    /// delivery.  Same connection → the previous response was read before
    /// this request was sent, so the stage commits into the cursor.
    /// Different connection → the previous response's fate is unknown
    /// (its socket is gone), so the stage is dropped and the frame will
    /// be re-delivered.  Returns the committed cursor, `None` for
    /// unknown/evicted clients.
    pub fn ack_poll(&self, client: u64, connection: u64) -> Option<u64> {
        let stamp = self.inner.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(client).lock();
        let entry = shard.clients.get_mut(&client)?;
        if let Some((conn, sequence)) = entry.staged.take() {
            if conn == connection {
                entry.cursor = entry.cursor.max(sequence);
            }
        }
        entry.last_touch = stamp;
        Some(entry.cursor)
    }

    /// Number of registered clients.
    pub fn client_count(&self) -> usize {
        self.inner.client_total.load(Ordering::Relaxed)
    }
}

/// The queue of steering commands posted by clients.
#[derive(Clone, Default)]
pub struct SteeringInbox {
    queue: Arc<Mutex<VecDeque<SteerableParams>>>,
}

impl SteeringInbox {
    /// An empty inbox.
    pub fn new() -> Self {
        SteeringInbox::default()
    }

    /// Post a steering request (from an HTTP handler).
    pub fn post(&self, params: SteerableParams) {
        self.queue.lock().push_back(params);
    }

    /// Drain all pending requests (from the simulation loop); the last one
    /// wins when several arrived between cycles.
    pub fn drain_latest(&self) -> Option<SteerableParams> {
        let mut queue = self.queue.lock();
        let last = queue.iter().last().copied();
        queue.clear();
        last
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    /// Whether the inbox is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn frame(cycle: u64) -> Frame {
        Frame {
            sequence: 0,
            cycle,
            time: cycle as f64 * 0.1,
            image: Image::filled(8, 8, [cycle as u8, 2, 3, 255]).encode_raw(),
            monitors: vec![("max_pressure".into(), 1.5)],
        }
    }

    /// An image of seeded random pixels — incompressible, so wire-size
    /// assertions measure the delta machinery rather than the RLE codec.
    fn noisy_image(rng: &mut StdRng, w: usize, h: usize) -> Image {
        let mut img = Image::new(w, h);
        for p in img.pixels.iter_mut() {
            *p = rng.gen_range(0..256) as u8;
        }
        img
    }

    #[test]
    fn publish_assigns_increasing_sequence_numbers() {
        let hub = SessionHub::new(4);
        assert_eq!(hub.latest_sequence(), 0);
        assert!(hub.latest_frame().is_none());
        assert_eq!(hub.publish(frame(1)), 1);
        assert_eq!(hub.publish(frame(2)), 2);
        assert_eq!(hub.latest_sequence(), 2);
        assert_eq!(hub.latest_frame().unwrap().cycle, 2);
    }

    #[test]
    fn poll_returns_only_newer_frames_and_respects_capacity() {
        let hub = SessionHub::new(2);
        for c in 1..=5 {
            hub.publish(frame(c));
        }
        // Capacity 2: only frames 4 and 5 are retained.
        let f = hub.poll_after(0, Duration::from_millis(10)).unwrap();
        assert_eq!(f.cycle, 4);
        let f = hub
            .poll_after(f.sequence, Duration::from_millis(10))
            .unwrap();
        assert_eq!(f.cycle, 5);
        // Nothing newer than 5: timeout.
        assert!(hub
            .poll_after(f.sequence, Duration::from_millis(20))
            .is_none());
    }

    #[test]
    fn long_poll_wakes_when_a_frame_is_published() {
        let hub = SessionHub::new(4);
        let hub2 = hub.clone();
        let waiter = std::thread::spawn(move || hub2.poll_after(0, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(30));
        hub.publish(frame(9));
        let got = waiter
            .join()
            .unwrap()
            .expect("poller should wake with the frame");
        assert_eq!(got.cycle, 9);
    }

    #[test]
    fn payloads_are_encoded_once_and_shared_across_pollers() {
        let hub = SessionHub::new(8);
        hub.publish(frame(1));
        let encodes_after_publish = hub.encode_count();
        let first = hub.try_payload(0, PollMode::Full).unwrap();
        for _ in 0..100 {
            let p = hub.try_payload(0, PollMode::Full).unwrap();
            assert!(Arc::ptr_eq(&p.json, &first.json), "same shared allocation");
        }
        assert_eq!(
            hub.encode_count(),
            encodes_after_publish,
            "polling must not encode"
        );
        let value: serde_json::Value = serde_json::from_str(&first.json).unwrap();
        assert_eq!(value["sequence"], 1);
        assert_eq!(value["mode"], "full");
    }

    #[test]
    fn delta_mode_serves_tiles_to_caught_up_pollers_and_full_to_laggards() {
        let hub = SessionHub::new(8);
        let mut img = Image::filled(64, 64, [10, 20, 30, 255]);
        hub.publish(Frame {
            image: img.encode_raw(),
            ..frame(1)
        });
        // Change one pixel: exactly one tile differs.
        img.set(5, 5, [200, 0, 0, 255]);
        hub.publish(Frame {
            image: img.encode_raw(),
            ..frame(2)
        });

        let caught_up = hub.try_payload(1, PollMode::Delta).unwrap();
        assert!(caught_up.is_delta);
        let value: serde_json::Value = serde_json::from_str(&caught_up.json).unwrap();
        assert_eq!(value["mode"], "delta");
        assert_eq!(value["base_sequence"], 1);
        assert_eq!(value["tiles"].as_array().unwrap().len(), 1);

        // A poller two frames behind gets the full frame even in delta mode.
        let laggard = hub.try_payload(0, PollMode::Delta).unwrap();
        assert!(!laggard.is_delta);
        // Full mode never serves deltas.
        assert!(!hub.try_payload(1, PollMode::Full).unwrap().is_delta);
    }

    #[test]
    fn delta_is_smaller_on_wire_and_skipped_when_not() {
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        let hub = SessionHub::new(8);
        let base = noisy_image(&mut rng, 64, 64);
        hub.publish(Frame {
            image: base.encode_raw(),
            ..frame(1)
        });
        let mut small_change = base.clone();
        small_change.set(0, 0, [9, 9, 9, 255]);
        hub.publish(Frame {
            image: small_change.encode_raw(),
            ..frame(2)
        });
        let delta = hub.try_payload(1, PollMode::Delta).unwrap();
        let full = hub.try_payload(1, PollMode::Full).unwrap();
        assert!(delta.is_delta);
        assert!(
            delta.json.len() < full.json.len() / 3,
            "one-tile delta should be far smaller than the full frame"
        );
        // Now replace every pixel with fresh noise: the delta covers the
        // whole screen plus per-tile overhead, so the hub falls back to
        // full.
        hub.publish(Frame {
            image: noisy_image(&mut rng, 64, 64).encode_raw(),
            ..frame(3)
        });
        assert!(!hub.try_payload(2, PollMode::Delta).unwrap().is_delta);
    }

    #[test]
    fn full_payload_rle_codec_shrinks_flat_frames_and_round_trips() {
        // A flat frame is dominated by one pixel run: the payload must be
        // marked codec=rle, be far smaller than the raw bytes, and decode
        // back bit-for-bit via image_from_json.
        let flat = Frame {
            sequence: 1,
            cycle: 1,
            time: 0.1,
            image: Image::filled(64, 64, [10, 20, 30, 255]).encode_raw(),
            monitors: vec![],
        };
        let json = encode_frame_full(&flat, 7);
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value["codec"], "rle");
        assert_eq!(image_from_json(&value).unwrap(), flat.image);
        assert!(
            json.len() < flat.image.len() / 4,
            "flat frame must compress well: {} -> {}",
            flat.image.len(),
            json.len()
        );

        // Incompressible frames ship raw — no codec field, never larger.
        let mut rng = StdRng::seed_from_u64(11);
        let noisy = Frame {
            image: noisy_image(&mut rng, 32, 32).encode_raw(),
            ..flat
        };
        let json = encode_frame_full(&noisy, 7);
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(value.get("codec").is_none());
        assert_eq!(image_from_json(&value).unwrap(), noisy.image);
    }

    #[test]
    fn delta_tiles_rle_compress_flat_tiles_and_decode_exactly() {
        // A one-pixel change in a flat region: the changed tile is mostly
        // one run, so it ships rle-marked, and delta_from_json must undo
        // the compression transparently.
        let prev = Image::filled(64, 64, [5, 6, 7, 255]);
        let mut cur = prev.clone();
        cur.set(40, 9, [1, 2, 3, 4]);
        let delta = diff_images(&prev, &cur, DELTA_TILE).unwrap();
        let f = Frame {
            sequence: 2,
            cycle: 2,
            time: 0.2,
            image: cur.encode_raw(),
            monitors: vec![],
        };
        let json = encode_frame_delta(&f, 7, 1, &delta);
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        let tiles = value["tiles"].as_array().unwrap();
        assert_eq!(tiles.len(), 1);
        assert_eq!(tiles[0]["rle"], true);
        let (base, wire) = delta_from_json(&value).unwrap();
        assert_eq!(base, 1);
        assert_eq!(apply_delta(&prev, &wire), cur);
    }

    #[test]
    fn delta_reconstruction_is_exact_on_random_frames() {
        // Property test: for seeded random frame pairs, shipping the delta
        // and applying it client-side reproduces the full frame exactly —
        // including the JSON/base64 wire round trip.
        let mut rng = StdRng::seed_from_u64(0xD31A);
        for case in 0..40 {
            let (w, h) = (1 + rng.gen_range(0..70), 1 + rng.gen_range(0..50));
            let mut prev = Image::new(w, h);
            for p in prev.pixels.iter_mut() {
                *p = rng.gen_range(0..256) as u8;
            }
            let mut cur = prev.clone();
            // Sparse random edits (possibly none).
            let edits = rng.gen_range(0..40);
            for _ in 0..edits {
                let x = rng.gen_range(0..w);
                let y = rng.gen_range(0..h);
                cur.set(x, y, [rng.gen_range(0..256) as u8, 0, 255, 1]);
            }
            let delta = diff_images(&prev, &cur, DELTA_TILE).unwrap();
            assert_eq!(apply_delta(&prev, &delta), cur, "case {case}: direct");

            // Through the wire: encode, parse, decode, apply.
            let f = Frame {
                sequence: 2,
                cycle: 2,
                time: 0.2,
                image: cur.encode_raw(),
                monitors: vec![],
            };
            let json = encode_frame_delta(&f, 7, 1, &delta);
            let value: serde_json::Value = serde_json::from_str(&json).unwrap();
            let (base, wire_delta) = delta_from_json(&value).unwrap();
            assert_eq!(base, 1);
            assert_eq!(
                apply_delta(&prev, &wire_delta),
                cur,
                "case {case}: via JSON wire"
            );
        }
    }

    /// Publish a run of frames with sparse edits confined to the first two
    /// tiles, returning the image history indexed by `sequence - 1`.
    fn publish_chain(hub: &SessionHub, rng: &mut StdRng, steps: u64) -> Vec<Image> {
        let (w, h) = (96, 64);
        let mut img = noisy_image(rng, w, h);
        let mut history = Vec::new();
        hub.publish(Frame {
            image: img.encode_raw(),
            ..frame(0)
        });
        history.push(img.clone());
        for c in 1..=steps {
            // Sparse edits inside the first two tiles of the grid: each
            // per-step delta stays small relative to the (noisy,
            // incompressible) full frame, so deltas and compositions pass
            // the profitability filter.
            for _ in 0..6 {
                let x = rng.gen_range(0..2 * DELTA_TILE);
                let y = rng.gen_range(0..DELTA_TILE);
                img.set(x, y, [rng.gen_range(0..256) as u8, 1, 2, 255]);
            }
            hub.publish(Frame {
                image: img.encode_raw(),
                ..frame(c)
            });
            history.push(img.clone());
        }
        history
    }

    #[test]
    fn composed_delta_chains_reconstruct_the_head_frame_exactly() {
        // Property test: a client `lag` frames behind receives one merged
        // delta jumping it straight to the head; applying that delta to
        // its retained pixels must reproduce the head frame bit-for-bit,
        // for every lag in 2..=MAX_DELTA_CHAIN — i.e. composing k per-step
        // deltas is exactly equivalent to applying them one by one.
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        let hub = SessionHub::new(32);
        let history = publish_chain(&hub, &mut rng, MAX_DELTA_CHAIN + 2);
        let head = hub.latest_sequence();
        for lag in 2..=MAX_DELTA_CHAIN {
            let since = head - lag;
            let payload = hub.try_payload(since, PollMode::Delta).unwrap();
            assert!(payload.is_delta, "lag {lag} should compose a delta");
            assert_eq!(payload.sequence, head, "a composition jumps to head");
            let value: serde_json::Value = serde_json::from_str(&payload.json).unwrap();
            let (base, wire) = delta_from_json(&value).unwrap();
            assert_eq!(base, since, "delta is based on the client's pixels");
            assert_eq!(
                apply_delta(&history[since as usize - 1], &wire),
                history[head as usize - 1],
                "lag {lag}: composed chain must equal the head frame"
            );
        }
        // Beyond MAX_DELTA_CHAIN the hub ships a full frame instead.
        let far = hub
            .try_payload(head - MAX_DELTA_CHAIN - 1, PollMode::Delta)
            .unwrap();
        assert!(!far.is_delta, "over-long chains fall back to full");
    }

    #[test]
    fn composed_deltas_are_encoded_once_and_shared_across_pollers() {
        let mut rng = StdRng::seed_from_u64(0xFACE);
        let hub = SessionHub::new(32);
        publish_chain(&hub, &mut rng, 5);
        let head = hub.latest_sequence();
        let since = head - 3;
        let first = hub.try_payload(since, PollMode::Delta).unwrap();
        assert!(first.is_delta);
        let encodes = hub.encode_count();
        for _ in 0..50 {
            let p = hub.try_payload(since, PollMode::Delta).unwrap();
            assert!(Arc::ptr_eq(&p.json, &first.json), "same shared composition");
        }
        assert_eq!(
            hub.encode_count(),
            encodes,
            "repeat compositions must hit the cache, not re-encode"
        );
    }

    #[test]
    fn wake_hooks_run_after_every_publish() {
        let hub = SessionHub::new(4);
        let hits = Arc::new(AtomicU64::new(0));
        let hub2 = hub.clone();
        let hits2 = hits.clone();
        hub.add_wake_hook(move || {
            // The new frame must already be readable when the hook runs —
            // the readiness Waker contract (ring the bell only after the
            // frame is observable).
            assert!(hub2.latest_sequence() >= 1);
            hits2.fetch_add(1, Ordering::SeqCst);
        });
        hub.publish(frame(1));
        hub.publish(frame(2));
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn sharded_cursors_stay_exact_under_racing_clients_and_publishers() {
        // Clients spread across every shard race cursor reads/updates
        // against two concurrent publishers: every cursor must advance
        // monotonically to the final sequence and the registry count must
        // stay exact (nothing lost or double-evicted).
        const CLIENTS: usize = 2 * CURSOR_SHARDS;
        const FRAMES: u64 = 60;
        let hub = SessionHub::with_limits(256, 1024);
        let ids: Vec<u64> = (0..CLIENTS).map(|_| hub.register_client()).collect();
        assert_eq!(hub.client_count(), CLIENTS);
        let workers: Vec<_> = ids
            .iter()
            .map(|&id| {
                let hub = hub.clone();
                std::thread::spawn(move || {
                    let mut last = hub.client_cursor(id).unwrap();
                    while last < FRAMES {
                        if let Some(p) = hub.try_payload(last, PollMode::Full) {
                            assert!(p.sequence > last, "payload must move the cursor");
                            hub.update_cursor(id, p.sequence);
                            let cur = hub.client_cursor(id).unwrap();
                            assert!(cur >= p.sequence, "cursor went backwards");
                            last = cur;
                        } else {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        let publishers: Vec<_> = (0..2)
            .map(|_| {
                let hub = hub.clone();
                std::thread::spawn(move || {
                    for c in 0..FRAMES / 2 {
                        hub.publish(frame(c));
                    }
                })
            })
            .collect();
        for p in publishers {
            p.join().unwrap();
        }
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(hub.client_count(), CLIENTS, "no client lost to races");
        for id in ids {
            assert_eq!(hub.client_cursor(id), Some(FRAMES));
        }
    }

    #[test]
    fn diff_rejects_resizes_and_identical_frames_have_empty_deltas() {
        let a = Image::filled(8, 8, [1, 1, 1, 1]);
        let b = Image::filled(16, 8, [1, 1, 1, 1]);
        assert!(diff_images(&a, &b, DELTA_TILE).is_none());
        let d = diff_images(&a, &a, DELTA_TILE).unwrap();
        assert!(d.tiles.is_empty());
        assert_eq!(apply_delta(&a, &d), a);
    }

    #[test]
    fn base64_round_trips_and_matches_known_vectors() {
        assert_eq!(base64_encode(b""), "");
        assert_eq!(base64_encode(b"f"), "Zg==");
        assert_eq!(base64_encode(b"fo"), "Zm8=");
        assert_eq!(base64_encode(b"foo"), "Zm9v");
        assert_eq!(base64_encode(b"foobar"), "Zm9vYmFy");
        assert_eq!(base64_decode("Zm9vYmFy").unwrap(), b"foobar");
        assert_eq!(base64_decode("Zg==").unwrap(), b"f");
        assert!(base64_decode("Zg=").is_none());
        assert!(base64_decode("Z!==").is_none());
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let n = rng.gen_range(0..100);
            let data: Vec<u8> = (0..n).map(|_| rng.gen_range(0..256) as u8).collect();
            assert_eq!(base64_decode(&base64_encode(&data)).unwrap(), data);
        }
    }

    #[test]
    fn racing_pollers_see_every_sequence_exactly_once() {
        // Many pollers race one publisher; capacity exceeds the frame
        // count, so every poller must observe 1..=N with no loss and no
        // duplication.
        const FRAMES: u64 = 200;
        const POLLERS: usize = 8;
        let hub = SessionHub::new(FRAMES as usize + 1);
        let pollers: Vec<_> = (0..POLLERS)
            .map(|_| {
                let hub = hub.clone();
                std::thread::spawn(move || {
                    let mut seen = Vec::new();
                    let mut since = 0;
                    while since < FRAMES {
                        if let Some(f) = hub.poll_after(since, Duration::from_secs(10)) {
                            seen.push(f.sequence);
                            since = f.sequence;
                        }
                    }
                    seen
                })
            })
            .collect();
        let publisher = {
            let hub = hub.clone();
            std::thread::spawn(move || {
                for c in 1..=FRAMES {
                    hub.publish(frame(c));
                    if c.is_multiple_of(50) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            })
        };
        publisher.join().unwrap();
        for poller in pollers {
            let seen = poller.join().unwrap();
            let expected: Vec<u64> = (1..=FRAMES).collect();
            assert_eq!(seen, expected, "no lost or duplicated sequence numbers");
        }
        // At most one full + one delta encode per publish, independent of
        // the number of pollers.
        assert!(hub.encode_count() <= 2 * FRAMES);
    }

    #[test]
    fn payloads_are_stamped_with_the_hub_epoch() {
        // The epoch marks the server incarnation: a client must be able to
        // detect a restart and discard retained pixels before applying a
        // delta from the wrong epoch.
        let hub = SessionHub::new(4);
        let epoch = hub.epoch();
        assert!(epoch > 0);
        let mut img = Image::filled(64, 64, [9, 9, 9, 255]);
        hub.publish(Frame {
            image: img.encode_raw(),
            ..frame(1)
        });
        img.set(0, 0, [1, 2, 3, 4]);
        hub.publish(Frame {
            image: img.encode_raw(),
            ..frame(2)
        });
        for (since, mode) in [(0, PollMode::Full), (1, PollMode::Delta)] {
            let payload = hub.try_payload(since, mode).unwrap();
            let value: serde_json::Value = serde_json::from_str(&payload.json).unwrap();
            assert_eq!(value["epoch"].as_u64(), Some(epoch));
        }
    }

    #[test]
    fn racing_publishers_keep_the_frame_cache_ordered() {
        // publish() drops the hub lock while encoding, so two publishers
        // can interleave; insertion must still keep the cache in sequence
        // order so pollers walk it monotonically.
        const PER_PUBLISHER: u64 = 100;
        let hub = SessionHub::new(2 * PER_PUBLISHER as usize + 1);
        let publishers: Vec<_> = (0..2)
            .map(|_| {
                let hub = hub.clone();
                std::thread::spawn(move || {
                    for c in 0..PER_PUBLISHER {
                        hub.publish(frame(c));
                    }
                })
            })
            .collect();
        for p in publishers {
            p.join().unwrap();
        }
        assert_eq!(hub.latest_sequence(), 2 * PER_PUBLISHER);
        let mut since = 0;
        while let Some(f) = hub.poll_after(since, Duration::from_millis(5)) {
            assert_eq!(f.sequence, since + 1, "cache must be gap-free and ordered");
            since = f.sequence;
        }
        assert_eq!(since, 2 * PER_PUBLISHER);
    }

    #[test]
    fn pollers_never_skip_frames_while_publishers_race() {
        // Two publishers encode outside the hub lock, so frame N+1 can be
        // inserted while N is still encoding; the in-flight visibility
        // gate must withhold N+1 until N lands, or a live poller would
        // advance past N and lose it.  Pollers run *during* the race and
        // assert strict gap-free delivery.
        const PER_PUBLISHER: u64 = 150;
        let hub = SessionHub::new(2 * PER_PUBLISHER as usize + 1);
        let pollers: Vec<_> = (0..4)
            .map(|_| {
                let hub = hub.clone();
                std::thread::spawn(move || {
                    let mut since = 0;
                    while since < 2 * PER_PUBLISHER {
                        if let Some(f) = hub.poll_after(since, Duration::from_secs(10)) {
                            assert_eq!(
                                f.sequence,
                                since + 1,
                                "a frame was skipped while publishers raced"
                            );
                            since = f.sequence;
                        }
                    }
                })
            })
            .collect();
        let publishers: Vec<_> = (0..2)
            .map(|_| {
                let hub = hub.clone();
                std::thread::spawn(move || {
                    for c in 0..PER_PUBLISHER {
                        hub.publish(frame(c));
                    }
                })
            })
            .collect();
        for p in publishers {
            p.join().unwrap();
        }
        for p in pollers {
            p.join().unwrap();
        }
    }

    #[test]
    fn client_cursors_advance_and_stalest_client_is_evicted_at_capacity() {
        let hub = SessionHub::with_limits(8, 2);
        let a = hub.register_client();
        let b = hub.register_client();
        assert_eq!(hub.client_cursor(a), Some(0));
        hub.publish(frame(1));
        hub.update_cursor(a, 1);
        assert_eq!(hub.client_cursor(a), Some(1));
        // Cursors never move backwards.
        hub.update_cursor(a, 0);
        assert_eq!(hub.client_cursor(a), Some(1));
        // `b` is now the stalest (a was touched since); registering a third
        // client evicts b.
        let c = hub.register_client();
        assert_eq!(hub.client_count(), 2);
        assert_eq!(hub.client_cursor(b), None, "stalest client evicted");
        assert_eq!(hub.client_cursor(a), Some(1), "active client survives");
        assert_eq!(hub.client_cursor(c), Some(0));
        // Updates for evicted ids are ignored, not resurrected.
        hub.update_cursor(b, 5);
        assert_eq!(hub.client_cursor(b), None);
    }

    #[test]
    fn staged_cursors_commit_on_same_connection_only() {
        let hub = SessionHub::with_limits(8, 4);
        let c = hub.register_client();
        hub.stage_cursor(c, 7, 3);
        assert_eq!(
            hub.client_cursor(c),
            Some(0),
            "a staged delivery must not move the committed cursor"
        );
        // The next poll arrives on a *different* connection: the staged
        // response died with its socket, so it is dropped, not committed.
        assert_eq!(hub.ack_poll(c, 9), Some(0));
        // Same connection: a later stage supersedes monotonically and the
        // next poll commits it.
        hub.stage_cursor(c, 9, 3);
        hub.stage_cursor(c, 9, 4);
        assert_eq!(hub.ack_poll(c, 9), Some(4));
        assert_eq!(hub.client_cursor(c), Some(4));
        // Unknown clients: staging is ignored, acking reports None.
        hub.stage_cursor(999, 1, 1);
        assert_eq!(hub.ack_poll(999, 1), None);
    }

    #[test]
    fn steering_inbox_keeps_the_latest_request() {
        let inbox = SteeringInbox::new();
        assert!(inbox.is_empty());
        assert!(inbox.drain_latest().is_none());
        inbox.post(SteerableParams {
            cfl: 0.1,
            ..SteerableParams::default()
        });
        inbox.post(SteerableParams {
            cfl: 0.3,
            ..SteerableParams::default()
        });
        assert_eq!(inbox.len(), 2);
        let latest = inbox.drain_latest().unwrap();
        assert!((latest.cfl - 0.3).abs() < 1e-12);
        assert!(inbox.is_empty());
    }
}
