//! The session hub: frames out, steering commands in.
//!
//! The hub is the piece that makes the front end "Ajax": the visualization
//! side publishes numbered frames (rendered images plus monitored state) and
//! any number of browser clients long-poll for the next frame they have not
//! seen, so only the image component of the page updates when new data
//! arrives.  Steering commands posted by clients are queued for the
//! simulation side to drain between cycles.

use parking_lot::{Condvar, Mutex};
use ricsa_hydro::steering::SteerableParams;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// One published frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Monotone frame number.
    pub sequence: u64,
    /// Simulation cycle the frame was produced from.
    pub cycle: u64,
    /// Physical simulation time.
    pub time: f64,
    /// The rendered image encoded with `Image::encode_raw` (RICSAIMG).
    pub image: Vec<u8>,
    /// Monitored scalar statistics shown next to the image
    /// (name → value), e.g. max pressure or total mass.
    pub monitors: Vec<(String, f64)>,
}

struct HubState {
    frames: VecDeque<Frame>,
    latest_sequence: u64,
    capacity: usize,
}

/// The frame hub shared between the visualization side and HTTP handlers.
#[derive(Clone)]
pub struct SessionHub {
    state: Arc<(Mutex<HubState>, Condvar)>,
}

impl Default for SessionHub {
    fn default() -> Self {
        SessionHub::new(32)
    }
}

impl SessionHub {
    /// A hub retaining up to `capacity` recent frames.
    pub fn new(capacity: usize) -> Self {
        SessionHub {
            state: Arc::new((
                Mutex::new(HubState {
                    frames: VecDeque::new(),
                    latest_sequence: 0,
                    capacity: capacity.max(1),
                }),
                Condvar::new(),
            )),
        }
    }

    /// Publish a frame; it is assigned the next sequence number, which is
    /// returned.  Waiting pollers are woken.
    pub fn publish(&self, mut frame: Frame) -> u64 {
        let (lock, cvar) = &*self.state;
        let mut state = lock.lock();
        state.latest_sequence += 1;
        frame.sequence = state.latest_sequence;
        let seq = frame.sequence;
        state.frames.push_back(frame);
        while state.frames.len() > state.capacity {
            state.frames.pop_front();
        }
        cvar.notify_all();
        seq
    }

    /// The sequence number of the most recent frame (0 if none yet).
    pub fn latest_sequence(&self) -> u64 {
        self.state.0.lock().latest_sequence
    }

    /// The most recent frame, if any.
    pub fn latest_frame(&self) -> Option<Frame> {
        self.state.0.lock().frames.back().cloned()
    }

    /// Long-poll: return the oldest retained frame newer than `since`,
    /// waiting up to `timeout` for one to be published.  `None` on timeout —
    /// the client simply re-polls, exactly like an `XMLHttpRequest` loop.
    pub fn poll_after(&self, since: u64, timeout: Duration) -> Option<Frame> {
        let (lock, cvar) = &*self.state;
        let mut state = lock.lock();
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if state.latest_sequence > since {
                let frame = state.frames.iter().find(|f| f.sequence > since).cloned();
                if frame.is_some() {
                    return frame;
                }
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let wait = deadline - now;
            if cvar.wait_for(&mut state, wait).timed_out() && state.latest_sequence <= since {
                return None;
            }
        }
    }
}

/// The queue of steering commands posted by clients.
#[derive(Clone, Default)]
pub struct SteeringInbox {
    queue: Arc<Mutex<VecDeque<SteerableParams>>>,
}

impl SteeringInbox {
    /// An empty inbox.
    pub fn new() -> Self {
        SteeringInbox::default()
    }

    /// Post a steering request (from an HTTP handler).
    pub fn post(&self, params: SteerableParams) {
        self.queue.lock().push_back(params);
    }

    /// Drain all pending requests (from the simulation loop); the last one
    /// wins when several arrived between cycles.
    pub fn drain_latest(&self) -> Option<SteerableParams> {
        let mut queue = self.queue.lock();
        let last = queue.iter().last().copied();
        queue.clear();
        last
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    /// Whether the inbox is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(cycle: u64) -> Frame {
        Frame {
            sequence: 0,
            cycle,
            time: cycle as f64 * 0.1,
            image: vec![1, 2, 3],
            monitors: vec![("max_pressure".into(), 1.5)],
        }
    }

    #[test]
    fn publish_assigns_increasing_sequence_numbers() {
        let hub = SessionHub::new(4);
        assert_eq!(hub.latest_sequence(), 0);
        assert!(hub.latest_frame().is_none());
        assert_eq!(hub.publish(frame(1)), 1);
        assert_eq!(hub.publish(frame(2)), 2);
        assert_eq!(hub.latest_sequence(), 2);
        assert_eq!(hub.latest_frame().unwrap().cycle, 2);
    }

    #[test]
    fn poll_returns_only_newer_frames_and_respects_capacity() {
        let hub = SessionHub::new(2);
        for c in 1..=5 {
            hub.publish(frame(c));
        }
        // Capacity 2: only frames 4 and 5 are retained.
        let f = hub.poll_after(0, Duration::from_millis(10)).unwrap();
        assert_eq!(f.cycle, 4);
        let f = hub
            .poll_after(f.sequence, Duration::from_millis(10))
            .unwrap();
        assert_eq!(f.cycle, 5);
        // Nothing newer than 5: timeout.
        assert!(hub
            .poll_after(f.sequence, Duration::from_millis(20))
            .is_none());
    }

    #[test]
    fn long_poll_wakes_when_a_frame_is_published() {
        let hub = SessionHub::new(4);
        let hub2 = hub.clone();
        let waiter = std::thread::spawn(move || hub2.poll_after(0, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(30));
        hub.publish(frame(9));
        let got = waiter
            .join()
            .unwrap()
            .expect("poller should wake with the frame");
        assert_eq!(got.cycle, 9);
    }

    #[test]
    fn steering_inbox_keeps_the_latest_request() {
        let inbox = SteeringInbox::new();
        assert!(inbox.is_empty());
        assert!(inbox.drain_latest().is_none());
        inbox.post(SteerableParams {
            cfl: 0.1,
            ..SteerableParams::default()
        });
        inbox.post(SteerableParams {
            cfl: 0.3,
            ..SteerableParams::default()
        });
        assert_eq!(inbox.len(), 2);
        let latest = inbox.drain_latest().unwrap();
        assert!((latest.cfl - 0.3).abs() < 1e-12);
        assert!(inbox.is_empty());
    }
}
