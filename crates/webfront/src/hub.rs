//! The session hub: frames out, steering commands in — encoded exactly once.
//!
//! The hub is the piece that makes the front end both "Ajax" and scalable:
//!
//! * **Publish → encode once.**  When the visualization side publishes a
//!   frame, the hub base64/JSON-encodes it *once* into a shared `Arc<str>`
//!   payload ([`FramePayload`]).  Every poller — one browser or a thousand —
//!   receives a clone of the same `Arc`; per-client cost is a lookup plus a
//!   reference-count bump, never a re-encode.  [`SessionHub::encode_count`]
//!   certifies this (it grows with publishes, not with pollers).
//! * **Delta frames.**  Alongside the full payload, publish computes the
//!   changed-tile difference to the *previous* frame ([`diff_images`]) and
//!   caches a delta payload.  A poller that is exactly one frame behind and
//!   asks for [`PollMode::Delta`] receives only the tiles that changed —
//!   the paper's "partial screen updates" carried through to the wire.  The
//!   delta is kept only when it is smaller than the full payload, and any
//!   poller further behind (or a resized frame) silently falls back to the
//!   full frame, so delta mode is never worse and always exact:
//!   [`apply_delta`] reconstructs the full frame bit-for-bit.
//! * **Per-client cursors.**  Clients may register ([`SessionHub::register_client`])
//!   and let the hub remember their last-delivered sequence, instead of
//!   carrying `since` themselves.  The registry is bounded: at capacity the
//!   stalest client (oldest activity) is evicted and simply re-registers on
//!   its next poll — slow pollers cannot pin hub memory.
//!
//! Steering commands posted by clients are queued in a [`SteeringInbox`]
//! for the simulation side to drain between cycles.
//!
//! See DESIGN.md §7 for the state machine and the delta exactness argument.

use parking_lot::{Condvar, Mutex};
use ricsa_hydro::steering::SteerableParams;
use ricsa_viz::image::Image;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

/// Tile edge length (pixels) used for delta frames.
pub const DELTA_TILE: usize = 32;

/// One published frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Monotone frame number.
    pub sequence: u64,
    /// Simulation cycle the frame was produced from.
    pub cycle: u64,
    /// Physical simulation time.
    pub time: f64,
    /// The rendered image encoded with `Image::encode_raw` (RICSAIMG).
    pub image: Vec<u8>,
    /// Monitored scalar statistics shown next to the image
    /// (name → value), e.g. max pressure or total mass.
    pub monitors: Vec<(String, f64)>,
}

/// Which wire encoding a poller asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollMode {
    /// Always the complete frame.
    Full,
    /// The changed-tile delta when the poller is exactly one frame behind
    /// and a delta is cached; the full frame otherwise.
    Delta,
}

/// A ready-to-serve poll response: the shared JSON payload for one frame.
#[derive(Debug, Clone)]
pub struct FramePayload {
    /// Sequence number of the frame this payload carries the client to.
    pub sequence: u64,
    /// The JSON body, shared across every client that receives this frame.
    pub json: Arc<str>,
    /// Whether this is the delta encoding (tiles only) or the full frame.
    pub is_delta: bool,
}

// ---------------------------------------------------------------- base64

/// Base64 encoding (standard alphabet, with padding) for frame payloads.
pub fn base64_encode(data: &[u8]) -> String {
    const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [
            chunk[0],
            *chunk.get(1).unwrap_or(&0),
            *chunk.get(2).unwrap_or(&0),
        ];
        let n = ((b[0] as u32) << 16) | ((b[1] as u32) << 8) | b[2] as u32;
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Decode standard base64 (the inverse of [`base64_encode`]); `None` on
/// any non-alphabet byte or truncated quantum.
pub fn base64_decode(s: &str) -> Option<Vec<u8>> {
    fn value(c: u8) -> Option<u32> {
        match c {
            b'A'..=b'Z' => Some((c - b'A') as u32),
            b'a'..=b'z' => Some((c - b'a' + 26) as u32),
            b'0'..=b'9' => Some((c - b'0' + 52) as u32),
            b'+' => Some(62),
            b'/' => Some(63),
            _ => None,
        }
    }
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return None;
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for chunk in bytes.chunks(4) {
        let pad = chunk.iter().filter(|&&c| c == b'=').count();
        if pad > 2 || chunk[..4 - pad].contains(&b'=') {
            return None;
        }
        let mut n: u32 = 0;
        for &c in &chunk[..4 - pad] {
            n = (n << 6) | value(c)?;
        }
        n <<= 6 * pad as u32;
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Some(out)
}

// ------------------------------------------------------------ delta tiles

/// One changed tile: rectangle origin and size in pixels, plus its raw
/// RGBA bytes (row-major within the rectangle).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TilePatch {
    /// Left edge of the rectangle.
    pub x: usize,
    /// Top edge of the rectangle.
    pub y: usize,
    /// Rectangle width (≤ [`DELTA_TILE`]; smaller at the right edge).
    pub w: usize,
    /// Rectangle height (≤ [`DELTA_TILE`]; smaller at the bottom edge).
    pub h: usize,
    /// Raw RGBA bytes of the rectangle.
    pub data: Vec<u8>,
}

/// The changed-tile difference between two equally-sized images.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameDelta {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Tile edge length the grid was cut with.
    pub tile: usize,
    /// Tiles whose bytes differ, in row-major tile order.
    pub tiles: Vec<TilePatch>,
}

/// Cut both images into a `tile`×`tile` grid and collect the tiles whose
/// bytes differ.  `None` when the images are not the same size (a resize
/// must ship a full frame).
pub fn diff_images(prev: &Image, cur: &Image, tile: usize) -> Option<FrameDelta> {
    if prev.width != cur.width || prev.height != cur.height || tile == 0 {
        return None;
    }
    let mut tiles = Vec::new();
    let mut y = 0;
    while y < cur.height {
        let h = tile.min(cur.height - y);
        let mut x = 0;
        while x < cur.width {
            let w = tile.min(cur.width - x);
            let mut changed = false;
            for row in y..y + h {
                let start = (row * cur.width + x) * 4;
                let end = start + w * 4;
                if prev.pixels[start..end] != cur.pixels[start..end] {
                    changed = true;
                    break;
                }
            }
            if changed {
                let mut data = Vec::with_capacity(w * h * 4);
                for row in y..y + h {
                    let start = (row * cur.width + x) * 4;
                    data.extend_from_slice(&cur.pixels[start..start + w * 4]);
                }
                tiles.push(TilePatch { x, y, w, h, data });
            }
            x += tile;
        }
        y += tile;
    }
    Some(FrameDelta {
        width: cur.width,
        height: cur.height,
        tile,
        tiles,
    })
}

/// Apply a delta to the frame it was computed against, reconstructing the
/// successor frame exactly (`apply_delta(prev, diff(prev, cur)) == cur`).
pub fn apply_delta(prev: &Image, delta: &FrameDelta) -> Image {
    let mut out = prev.clone();
    for patch in &delta.tiles {
        let mut offset = 0;
        for row in patch.y..patch.y + patch.h {
            let start = (row * out.width + patch.x) * 4;
            out.pixels[start..start + patch.w * 4]
                .copy_from_slice(&patch.data[offset..offset + patch.w * 4]);
            offset += patch.w * 4;
        }
    }
    out
}

/// Parse a delta poll response (the wire JSON produced by the hub) back
/// into its base sequence and [`FrameDelta`].  Used by tests and clients
/// that reconstruct frames outside a browser.
pub fn delta_from_json(value: &serde_json::Value) -> Option<(u64, FrameDelta)> {
    if value.get("mode")?.as_str()? != "delta" {
        return None;
    }
    let base = value.get("base_sequence")?.as_u64()?;
    let width = value.get("width")?.as_u64()? as usize;
    let height = value.get("height")?.as_u64()? as usize;
    let tile = value.get("tile")?.as_u64()? as usize;
    let mut tiles = Vec::new();
    for t in value.get("tiles")?.as_array()? {
        tiles.push(TilePatch {
            x: t.get("x")?.as_u64()? as usize,
            y: t.get("y")?.as_u64()? as usize,
            w: t.get("w")?.as_u64()? as usize,
            h: t.get("h")?.as_u64()? as usize,
            data: base64_decode(t.get("data_base64")?.as_str()?)?,
        });
    }
    Some((
        base,
        FrameDelta {
            width,
            height,
            tile,
            tiles,
        },
    ))
}

// -------------------------------------------------------------- encoding

fn frame_header_json(frame: &Frame, epoch: u64) -> serde_json::Value {
    serde_json::json!({
        "sequence": frame.sequence,
        "cycle": frame.cycle,
        "time": frame.time,
        "monitors": frame.monitors,
        "epoch": epoch,
    })
}

/// JSON-encode a complete frame (mode `full`) stamped with the hub's
/// `epoch`.  This is the work the encode cache performs exactly once per
/// publish; the `webfront_bench` criterion bench calls it directly to
/// price the per-client-encode alternative.
pub fn encode_frame_full(frame: &Frame, epoch: u64) -> String {
    let mut value = frame_header_json(frame, epoch);
    if let serde_json::Value::Object(map) = &mut value {
        map.insert("mode".into(), serde_json::json!("full"));
        map.insert(
            "image_base64".into(),
            serde_json::json!(base64_encode(&frame.image)),
        );
    }
    value.to_string()
}

/// JSON-encode a delta frame (mode `delta`) against `base_sequence`,
/// stamped with the hub's `epoch`.
pub fn encode_frame_delta(
    frame: &Frame,
    epoch: u64,
    base_sequence: u64,
    delta: &FrameDelta,
) -> String {
    let tiles: Vec<serde_json::Value> = delta
        .tiles
        .iter()
        .map(|t| {
            serde_json::json!({
                "x": t.x,
                "y": t.y,
                "w": t.w,
                "h": t.h,
                "data_base64": base64_encode(&t.data),
            })
        })
        .collect();
    let mut value = frame_header_json(frame, epoch);
    if let serde_json::Value::Object(map) = &mut value {
        map.insert("mode".into(), serde_json::json!("delta"));
        map.insert("base_sequence".into(), serde_json::json!(base_sequence));
        map.insert("width".into(), serde_json::json!(delta.width));
        map.insert("height".into(), serde_json::json!(delta.height));
        map.insert("tile".into(), serde_json::json!(delta.tile));
        map.insert("tiles".into(), serde_json::Value::Array(tiles));
    }
    value.to_string()
}

// ------------------------------------------------------------------- hub

/// One frame with its cached wire encodings.
struct CachedFrame {
    frame: Frame,
    /// Full-frame payload, encoded once at publish.
    full: Arc<str>,
    /// Delta payload against the immediately preceding sequence number;
    /// `None` for the first frame, after a resize, or when the delta would
    /// not be meaningfully smaller than the full payload.
    delta: Option<Arc<str>>,
}

struct ClientState {
    cursor: u64,
    /// Logical activity stamp (monotone counter, not wall-clock) — the
    /// smallest stamp is the stalest client, evicted first.
    last_touch: u64,
}

struct HubState {
    frames: VecDeque<CachedFrame>,
    latest_sequence: u64,
    capacity: usize,
    clients: HashMap<u64, ClientState>,
    next_client: u64,
    max_clients: usize,
    clock: u64,
    encodes: u64,
    /// Decoded image of the most recently published frame, kept so the
    /// next publish can diff against it without re-decoding (and without
    /// holding the lock while it does).
    last_image: Option<(u64, Image)>,
    /// Instance marker stamped into every payload: a client holding state
    /// from a previous server incarnation sees the epoch change and knows
    /// its pixel buffer and `since` cursor are stale (a delta against
    /// another epoch must never be applied).
    epoch: u64,
    /// Sequence numbers claimed by publishers still encoding outside the
    /// lock.  Frames above the smallest in-flight claim are withheld from
    /// pollers — otherwise a poller could be handed N+1 while N is still
    /// encoding, advance its cursor past N, and lose N forever.
    in_flight: BTreeSet<u64>,
}

impl HubState {
    /// The newest sequence number pollers may see: everything at or below
    /// it is fully inserted.
    fn visible_sequence(&self) -> u64 {
        match self.in_flight.iter().next() {
            Some(&oldest_claim) => oldest_claim - 1,
            None => self.latest_sequence,
        }
    }
}

impl HubState {
    fn touch(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn evict_to_capacity(&mut self) {
        while self.clients.len() > self.max_clients {
            let Some((&stalest, _)) = self.clients.iter().min_by_key(|(_, c)| c.last_touch) else {
                return;
            };
            self.clients.remove(&stalest);
        }
    }
}

/// The frame hub shared between the visualization side and HTTP handlers.
#[derive(Clone)]
pub struct SessionHub {
    state: Arc<(Mutex<HubState>, Condvar)>,
}

impl Default for SessionHub {
    fn default() -> Self {
        SessionHub::new(32)
    }
}

impl SessionHub {
    /// A hub retaining up to `capacity` recent frames (client registry
    /// bounded at 1024).
    pub fn new(capacity: usize) -> Self {
        SessionHub::with_limits(capacity, 1024)
    }

    /// A hub retaining up to `capacity` frames and at most `max_clients`
    /// registered client cursors (the stalest is evicted beyond that).
    pub fn with_limits(capacity: usize, max_clients: usize) -> Self {
        SessionHub {
            state: Arc::new((
                Mutex::new(HubState {
                    frames: VecDeque::new(),
                    latest_sequence: 0,
                    capacity: capacity.max(1),
                    clients: HashMap::new(),
                    next_client: 1,
                    max_clients: max_clients.max(1),
                    clock: 0,
                    encodes: 0,
                    last_image: None,
                    // Keep the epoch within f64's exact-integer range
                    // (2^53): JSON numbers — and the serde shim's Value —
                    // are doubles, and a corrupted epoch would defeat the
                    // restart detection it exists for.
                    in_flight: BTreeSet::new(),
                    epoch: (std::time::SystemTime::now()
                        .duration_since(std::time::UNIX_EPOCH)
                        .map(|d| d.as_nanos() as u64)
                        .unwrap_or(1)
                        & ((1 << 53) - 1))
                        .max(1),
                }),
                Condvar::new(),
            )),
        }
    }

    /// Publish a frame; it is assigned the next sequence number, which is
    /// returned.  The full payload — and, when profitable, the delta
    /// against the previous frame — is encoded here, exactly once, no
    /// matter how many clients will poll it.  Waiting pollers are woken.
    ///
    /// The encode/diff work happens *outside* the hub lock (pollers keep
    /// being served while a frame is encoded); only sequence assignment
    /// and cache insertion hold it.
    pub fn publish(&self, mut frame: Frame) -> u64 {
        let (lock, cvar) = &*self.state;

        // Lock 1: claim a sequence number (marked in-flight so pollers are
        // not handed a later frame first) and take the predecessor's
        // decoded image for the diff.
        let (seq, prev_image, epoch) = {
            let mut state = lock.lock();
            state.latest_sequence += 1;
            let seq = state.latest_sequence;
            state.in_flight.insert(seq);
            (seq, state.last_image.take(), state.epoch)
        };
        frame.sequence = seq;

        // Encode without the lock held.
        let full: Arc<str> = Arc::from(encode_frame_full(&frame, epoch).as_str());
        let cur_image = Image::decode_raw(&frame.image);
        let mut delta_encodes = 0u64;
        let delta = prev_image
            .filter(|(prev_seq, _)| *prev_seq == seq - 1)
            .zip(cur_image.as_ref())
            .and_then(|((_, prev_img), cur_img)| diff_images(&prev_img, cur_img, DELTA_TILE))
            .map(|delta| {
                delta_encodes = 1; // real work even if discarded below
                encode_frame_delta(&frame, epoch, seq - 1, &delta)
            })
            // A delta that is not meaningfully smaller than the full frame
            // (most of the screen changed) is not worth caching or
            // shipping: require at least a 10% saving.
            .filter(|json| json.len() * 10 <= full.len() * 9)
            .map(|json| Arc::from(json.as_str()));

        // Lock 2: insert in sequence order (a racing publisher may have
        // inserted a later frame while we encoded) and wake pollers.
        let mut state = lock.lock();
        state.encodes += 1 + delta_encodes;
        state.in_flight.remove(&seq);
        let at = state.frames.partition_point(|c| c.frame.sequence < seq);
        state.frames.insert(at, CachedFrame { frame, full, delta });
        while state.frames.len() > state.capacity {
            state.frames.pop_front();
        }
        if let Some(cur) = cur_image {
            // Keep the newest decoded image as the next diff base (racing
            // publishers: only the latest sequence wins).
            if state.last_image.as_ref().is_none_or(|(s, _)| *s < seq) {
                state.last_image = Some((seq, cur));
            }
        }
        cvar.notify_all();
        seq
    }

    /// The sequence number of the most recent fully published frame
    /// (0 if none yet).  Sequence numbers claimed by publishers still
    /// encoding are not reported — they are not yet observable.
    pub fn latest_sequence(&self) -> u64 {
        self.state.0.lock().visible_sequence()
    }

    /// The most recent (fully published) frame, if any.
    pub fn latest_frame(&self) -> Option<Frame> {
        let state = self.state.0.lock();
        let visible = state.visible_sequence();
        state
            .frames
            .iter()
            .rev()
            .find(|c| c.frame.sequence <= visible)
            .map(|c| c.frame.clone())
    }

    /// The hub's instance marker, stamped into every payload (`epoch`
    /// field).  Clients must discard retained frame state when it changes:
    /// a delta from one epoch is meaningless against pixels of another.
    pub fn epoch(&self) -> u64 {
        self.state.0.lock().epoch
    }

    /// Total encode passes performed (full + delta).  Grows with
    /// publishes, never with pollers — the invariant the encode cache
    /// exists to provide.
    pub fn encode_count(&self) -> u64 {
        self.state.0.lock().encodes
    }

    /// The full payload of the newest *cached* frame, if any.  This reads
    /// the cache tail directly rather than going through
    /// `latest_sequence()`, which during a publish is already bumped
    /// before the frame's payload is inserted (sequence claim and cache
    /// insertion are separate critical sections).
    pub fn latest_payload(&self) -> Option<FramePayload> {
        let state = self.state.0.lock();
        let visible = state.visible_sequence();
        state
            .frames
            .iter()
            .rev()
            .find(|c| c.frame.sequence <= visible)
            .map(|cached| FramePayload {
                sequence: cached.frame.sequence,
                json: cached.full.clone(),
                is_delta: false,
            })
    }

    /// The shared payload for the oldest retained frame newer than
    /// `since`, without waiting.  [`PollMode::Delta`] yields the delta
    /// encoding only when the client is exactly one frame behind and a
    /// delta was cached; everything else gets the full frame.
    pub fn try_payload(&self, since: u64, mode: PollMode) -> Option<FramePayload> {
        let state = self.state.0.lock();
        let visible = state.visible_sequence();
        let cached = state
            .frames
            .iter()
            .find(|c| c.frame.sequence > since && c.frame.sequence <= visible)?;
        let sequence = cached.frame.sequence;
        if mode == PollMode::Delta && sequence == since + 1 {
            if let Some(delta) = &cached.delta {
                return Some(FramePayload {
                    sequence,
                    json: delta.clone(),
                    is_delta: true,
                });
            }
        }
        Some(FramePayload {
            sequence,
            json: cached.full.clone(),
            is_delta: false,
        })
    }

    /// Long-poll: return the oldest retained frame newer than `since`,
    /// waiting up to `timeout` for one to be published.  `None` on timeout —
    /// the client simply re-polls, exactly like an `XMLHttpRequest` loop.
    pub fn poll_after(&self, since: u64, timeout: Duration) -> Option<Frame> {
        let (lock, cvar) = &*self.state;
        let mut state = lock.lock();
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let visible = state.visible_sequence();
            if visible > since {
                let frame = state
                    .frames
                    .iter()
                    .find(|c| c.frame.sequence > since && c.frame.sequence <= visible)
                    .map(|c| c.frame.clone());
                if frame.is_some() {
                    return frame;
                }
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let wait = deadline - now;
            if cvar.wait_for(&mut state, wait).timed_out() && state.latest_sequence <= since {
                return None;
            }
        }
    }

    // ------------------------------------------------------ client cursors

    /// Register a polling client; returns its id.  The cursor starts at 0
    /// (the next poll delivers the oldest retained frame).  At
    /// `max_clients` the stalest registered client is evicted to make room.
    pub fn register_client(&self) -> u64 {
        let mut state = self.state.0.lock();
        let id = state.next_client;
        state.next_client += 1;
        let stamp = state.touch();
        state.clients.insert(
            id,
            ClientState {
                cursor: 0,
                last_touch: stamp,
            },
        );
        state.evict_to_capacity();
        id
    }

    /// The stored cursor for `client`, refreshing its activity stamp.
    /// `None` when the client is unknown (never registered, or evicted as
    /// stale — it should re-register).
    pub fn client_cursor(&self, client: u64) -> Option<u64> {
        let mut state = self.state.0.lock();
        let stamp = state.touch();
        let entry = state.clients.get_mut(&client)?;
        entry.last_touch = stamp;
        Some(entry.cursor)
    }

    /// Record that frame `sequence` has been served to `client` (cursors
    /// only move forward).  Unknown ids are ignored — an evicted client
    /// keeps polling statelessly until it re-registers.
    ///
    /// Cursor semantics are *at-most-once*: the cursor advances when the
    /// response is computed, so a frame whose response is lost to a dying
    /// connection is skipped, not re-delivered.  Clients that need
    /// loss-proof resumption carry their own explicit `since` (as the
    /// embedded page does); delivery-acknowledged cursors are a ROADMAP
    /// follow-up.
    pub fn update_cursor(&self, client: u64, sequence: u64) {
        let mut state = self.state.0.lock();
        let stamp = state.touch();
        if let Some(entry) = state.clients.get_mut(&client) {
            entry.cursor = entry.cursor.max(sequence);
            entry.last_touch = stamp;
        }
    }

    /// Number of registered clients.
    pub fn client_count(&self) -> usize {
        self.state.0.lock().clients.len()
    }
}

/// The queue of steering commands posted by clients.
#[derive(Clone, Default)]
pub struct SteeringInbox {
    queue: Arc<Mutex<VecDeque<SteerableParams>>>,
}

impl SteeringInbox {
    /// An empty inbox.
    pub fn new() -> Self {
        SteeringInbox::default()
    }

    /// Post a steering request (from an HTTP handler).
    pub fn post(&self, params: SteerableParams) {
        self.queue.lock().push_back(params);
    }

    /// Drain all pending requests (from the simulation loop); the last one
    /// wins when several arrived between cycles.
    pub fn drain_latest(&self) -> Option<SteerableParams> {
        let mut queue = self.queue.lock();
        let last = queue.iter().last().copied();
        queue.clear();
        last
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    /// Whether the inbox is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn frame(cycle: u64) -> Frame {
        Frame {
            sequence: 0,
            cycle,
            time: cycle as f64 * 0.1,
            image: Image::filled(8, 8, [cycle as u8, 2, 3, 255]).encode_raw(),
            monitors: vec![("max_pressure".into(), 1.5)],
        }
    }

    #[test]
    fn publish_assigns_increasing_sequence_numbers() {
        let hub = SessionHub::new(4);
        assert_eq!(hub.latest_sequence(), 0);
        assert!(hub.latest_frame().is_none());
        assert_eq!(hub.publish(frame(1)), 1);
        assert_eq!(hub.publish(frame(2)), 2);
        assert_eq!(hub.latest_sequence(), 2);
        assert_eq!(hub.latest_frame().unwrap().cycle, 2);
    }

    #[test]
    fn poll_returns_only_newer_frames_and_respects_capacity() {
        let hub = SessionHub::new(2);
        for c in 1..=5 {
            hub.publish(frame(c));
        }
        // Capacity 2: only frames 4 and 5 are retained.
        let f = hub.poll_after(0, Duration::from_millis(10)).unwrap();
        assert_eq!(f.cycle, 4);
        let f = hub
            .poll_after(f.sequence, Duration::from_millis(10))
            .unwrap();
        assert_eq!(f.cycle, 5);
        // Nothing newer than 5: timeout.
        assert!(hub
            .poll_after(f.sequence, Duration::from_millis(20))
            .is_none());
    }

    #[test]
    fn long_poll_wakes_when_a_frame_is_published() {
        let hub = SessionHub::new(4);
        let hub2 = hub.clone();
        let waiter = std::thread::spawn(move || hub2.poll_after(0, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(30));
        hub.publish(frame(9));
        let got = waiter
            .join()
            .unwrap()
            .expect("poller should wake with the frame");
        assert_eq!(got.cycle, 9);
    }

    #[test]
    fn payloads_are_encoded_once_and_shared_across_pollers() {
        let hub = SessionHub::new(8);
        hub.publish(frame(1));
        let encodes_after_publish = hub.encode_count();
        let first = hub.try_payload(0, PollMode::Full).unwrap();
        for _ in 0..100 {
            let p = hub.try_payload(0, PollMode::Full).unwrap();
            assert!(Arc::ptr_eq(&p.json, &first.json), "same shared allocation");
        }
        assert_eq!(
            hub.encode_count(),
            encodes_after_publish,
            "polling must not encode"
        );
        let value: serde_json::Value = serde_json::from_str(&first.json).unwrap();
        assert_eq!(value["sequence"], 1);
        assert_eq!(value["mode"], "full");
    }

    #[test]
    fn delta_mode_serves_tiles_to_caught_up_pollers_and_full_to_laggards() {
        let hub = SessionHub::new(8);
        let mut img = Image::filled(64, 64, [10, 20, 30, 255]);
        hub.publish(Frame {
            image: img.encode_raw(),
            ..frame(1)
        });
        // Change one pixel: exactly one tile differs.
        img.set(5, 5, [200, 0, 0, 255]);
        hub.publish(Frame {
            image: img.encode_raw(),
            ..frame(2)
        });

        let caught_up = hub.try_payload(1, PollMode::Delta).unwrap();
        assert!(caught_up.is_delta);
        let value: serde_json::Value = serde_json::from_str(&caught_up.json).unwrap();
        assert_eq!(value["mode"], "delta");
        assert_eq!(value["base_sequence"], 1);
        assert_eq!(value["tiles"].as_array().unwrap().len(), 1);

        // A poller two frames behind gets the full frame even in delta mode.
        let laggard = hub.try_payload(0, PollMode::Delta).unwrap();
        assert!(!laggard.is_delta);
        // Full mode never serves deltas.
        assert!(!hub.try_payload(1, PollMode::Full).unwrap().is_delta);
    }

    #[test]
    fn delta_is_smaller_on_wire_and_skipped_when_not() {
        let hub = SessionHub::new(8);
        let base = Image::filled(64, 64, [1, 2, 3, 255]);
        hub.publish(Frame {
            image: base.encode_raw(),
            ..frame(1)
        });
        let mut small_change = base.clone();
        small_change.set(0, 0, [9, 9, 9, 255]);
        hub.publish(Frame {
            image: small_change.encode_raw(),
            ..frame(2)
        });
        let delta = hub.try_payload(1, PollMode::Delta).unwrap();
        let full = hub.try_payload(1, PollMode::Full).unwrap();
        assert!(delta.is_delta);
        assert!(
            delta.json.len() < full.json.len() / 3,
            "one-tile delta should be far smaller than the full frame"
        );
        // Now change every pixel: the delta would be larger than the full
        // frame (per-tile overhead), so the hub falls back to full.
        hub.publish(Frame {
            image: Image::filled(64, 64, [7, 7, 7, 7]).encode_raw(),
            ..frame(3)
        });
        assert!(!hub.try_payload(2, PollMode::Delta).unwrap().is_delta);
    }

    #[test]
    fn delta_reconstruction_is_exact_on_random_frames() {
        // Property test: for seeded random frame pairs, shipping the delta
        // and applying it client-side reproduces the full frame exactly —
        // including the JSON/base64 wire round trip.
        let mut rng = StdRng::seed_from_u64(0xD31A);
        for case in 0..40 {
            let (w, h) = (1 + rng.gen_range(0..70), 1 + rng.gen_range(0..50));
            let mut prev = Image::new(w, h);
            for p in prev.pixels.iter_mut() {
                *p = rng.gen_range(0..256) as u8;
            }
            let mut cur = prev.clone();
            // Sparse random edits (possibly none).
            let edits = rng.gen_range(0..40);
            for _ in 0..edits {
                let x = rng.gen_range(0..w);
                let y = rng.gen_range(0..h);
                cur.set(x, y, [rng.gen_range(0..256) as u8, 0, 255, 1]);
            }
            let delta = diff_images(&prev, &cur, DELTA_TILE).unwrap();
            assert_eq!(apply_delta(&prev, &delta), cur, "case {case}: direct");

            // Through the wire: encode, parse, decode, apply.
            let f = Frame {
                sequence: 2,
                cycle: 2,
                time: 0.2,
                image: cur.encode_raw(),
                monitors: vec![],
            };
            let json = encode_frame_delta(&f, 7, 1, &delta);
            let value: serde_json::Value = serde_json::from_str(&json).unwrap();
            let (base, wire_delta) = delta_from_json(&value).unwrap();
            assert_eq!(base, 1);
            assert_eq!(
                apply_delta(&prev, &wire_delta),
                cur,
                "case {case}: via JSON wire"
            );
        }
    }

    #[test]
    fn diff_rejects_resizes_and_identical_frames_have_empty_deltas() {
        let a = Image::filled(8, 8, [1, 1, 1, 1]);
        let b = Image::filled(16, 8, [1, 1, 1, 1]);
        assert!(diff_images(&a, &b, DELTA_TILE).is_none());
        let d = diff_images(&a, &a, DELTA_TILE).unwrap();
        assert!(d.tiles.is_empty());
        assert_eq!(apply_delta(&a, &d), a);
    }

    #[test]
    fn base64_round_trips_and_matches_known_vectors() {
        assert_eq!(base64_encode(b""), "");
        assert_eq!(base64_encode(b"f"), "Zg==");
        assert_eq!(base64_encode(b"fo"), "Zm8=");
        assert_eq!(base64_encode(b"foo"), "Zm9v");
        assert_eq!(base64_encode(b"foobar"), "Zm9vYmFy");
        assert_eq!(base64_decode("Zm9vYmFy").unwrap(), b"foobar");
        assert_eq!(base64_decode("Zg==").unwrap(), b"f");
        assert!(base64_decode("Zg=").is_none());
        assert!(base64_decode("Z!==").is_none());
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let n = rng.gen_range(0..100);
            let data: Vec<u8> = (0..n).map(|_| rng.gen_range(0..256) as u8).collect();
            assert_eq!(base64_decode(&base64_encode(&data)).unwrap(), data);
        }
    }

    #[test]
    fn racing_pollers_see_every_sequence_exactly_once() {
        // Many pollers race one publisher; capacity exceeds the frame
        // count, so every poller must observe 1..=N with no loss and no
        // duplication.
        const FRAMES: u64 = 200;
        const POLLERS: usize = 8;
        let hub = SessionHub::new(FRAMES as usize + 1);
        let pollers: Vec<_> = (0..POLLERS)
            .map(|_| {
                let hub = hub.clone();
                std::thread::spawn(move || {
                    let mut seen = Vec::new();
                    let mut since = 0;
                    while since < FRAMES {
                        if let Some(f) = hub.poll_after(since, Duration::from_secs(10)) {
                            seen.push(f.sequence);
                            since = f.sequence;
                        }
                    }
                    seen
                })
            })
            .collect();
        let publisher = {
            let hub = hub.clone();
            std::thread::spawn(move || {
                for c in 1..=FRAMES {
                    hub.publish(frame(c));
                    if c.is_multiple_of(50) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            })
        };
        publisher.join().unwrap();
        for poller in pollers {
            let seen = poller.join().unwrap();
            let expected: Vec<u64> = (1..=FRAMES).collect();
            assert_eq!(seen, expected, "no lost or duplicated sequence numbers");
        }
        // At most one full + one delta encode per publish, independent of
        // the number of pollers.
        assert!(hub.encode_count() <= 2 * FRAMES);
    }

    #[test]
    fn payloads_are_stamped_with_the_hub_epoch() {
        // The epoch marks the server incarnation: a client must be able to
        // detect a restart and discard retained pixels before applying a
        // delta from the wrong epoch.
        let hub = SessionHub::new(4);
        let epoch = hub.epoch();
        assert!(epoch > 0);
        let mut img = Image::filled(64, 64, [9, 9, 9, 255]);
        hub.publish(Frame {
            image: img.encode_raw(),
            ..frame(1)
        });
        img.set(0, 0, [1, 2, 3, 4]);
        hub.publish(Frame {
            image: img.encode_raw(),
            ..frame(2)
        });
        for (since, mode) in [(0, PollMode::Full), (1, PollMode::Delta)] {
            let payload = hub.try_payload(since, mode).unwrap();
            let value: serde_json::Value = serde_json::from_str(&payload.json).unwrap();
            assert_eq!(value["epoch"].as_u64(), Some(epoch));
        }
    }

    #[test]
    fn racing_publishers_keep_the_frame_cache_ordered() {
        // publish() drops the hub lock while encoding, so two publishers
        // can interleave; insertion must still keep the cache in sequence
        // order so pollers walk it monotonically.
        const PER_PUBLISHER: u64 = 100;
        let hub = SessionHub::new(2 * PER_PUBLISHER as usize + 1);
        let publishers: Vec<_> = (0..2)
            .map(|_| {
                let hub = hub.clone();
                std::thread::spawn(move || {
                    for c in 0..PER_PUBLISHER {
                        hub.publish(frame(c));
                    }
                })
            })
            .collect();
        for p in publishers {
            p.join().unwrap();
        }
        assert_eq!(hub.latest_sequence(), 2 * PER_PUBLISHER);
        let mut since = 0;
        while let Some(f) = hub.poll_after(since, Duration::from_millis(5)) {
            assert_eq!(f.sequence, since + 1, "cache must be gap-free and ordered");
            since = f.sequence;
        }
        assert_eq!(since, 2 * PER_PUBLISHER);
    }

    #[test]
    fn pollers_never_skip_frames_while_publishers_race() {
        // Two publishers encode outside the hub lock, so frame N+1 can be
        // inserted while N is still encoding; the in-flight visibility
        // gate must withhold N+1 until N lands, or a live poller would
        // advance past N and lose it.  Pollers run *during* the race and
        // assert strict gap-free delivery.
        const PER_PUBLISHER: u64 = 150;
        let hub = SessionHub::new(2 * PER_PUBLISHER as usize + 1);
        let pollers: Vec<_> = (0..4)
            .map(|_| {
                let hub = hub.clone();
                std::thread::spawn(move || {
                    let mut since = 0;
                    while since < 2 * PER_PUBLISHER {
                        if let Some(f) = hub.poll_after(since, Duration::from_secs(10)) {
                            assert_eq!(
                                f.sequence,
                                since + 1,
                                "a frame was skipped while publishers raced"
                            );
                            since = f.sequence;
                        }
                    }
                })
            })
            .collect();
        let publishers: Vec<_> = (0..2)
            .map(|_| {
                let hub = hub.clone();
                std::thread::spawn(move || {
                    for c in 0..PER_PUBLISHER {
                        hub.publish(frame(c));
                    }
                })
            })
            .collect();
        for p in publishers {
            p.join().unwrap();
        }
        for p in pollers {
            p.join().unwrap();
        }
    }

    #[test]
    fn client_cursors_advance_and_stalest_client_is_evicted_at_capacity() {
        let hub = SessionHub::with_limits(8, 2);
        let a = hub.register_client();
        let b = hub.register_client();
        assert_eq!(hub.client_cursor(a), Some(0));
        hub.publish(frame(1));
        hub.update_cursor(a, 1);
        assert_eq!(hub.client_cursor(a), Some(1));
        // Cursors never move backwards.
        hub.update_cursor(a, 0);
        assert_eq!(hub.client_cursor(a), Some(1));
        // `b` is now the stalest (a was touched since); registering a third
        // client evicts b.
        let c = hub.register_client();
        assert_eq!(hub.client_count(), 2);
        assert_eq!(hub.client_cursor(b), None, "stalest client evicted");
        assert_eq!(hub.client_cursor(a), Some(1), "active client survives");
        assert_eq!(hub.client_cursor(c), Some(0));
        // Updates for evicted ids are ignored, not resurrected.
        hub.update_cursor(b, 5);
        assert_eq!(hub.client_cursor(b), None);
    }

    #[test]
    fn steering_inbox_keeps_the_latest_request() {
        let inbox = SteeringInbox::new();
        assert!(inbox.is_empty());
        assert!(inbox.drain_latest().is_none());
        inbox.post(SteerableParams {
            cfl: 0.1,
            ..SteerableParams::default()
        });
        inbox.post(SteerableParams {
            cfl: 0.3,
            ..SteerableParams::default()
        });
        assert_eq!(inbox.len(), 2);
        let latest = inbox.drain_latest().unwrap();
        assert!((latest.cfl - 0.3).abs() < 1e-12);
        assert!(inbox.is_empty());
    }
}
