//! Multi-session serving: many session hubs behind one HTTP server.
//!
//! Production scale means many concurrent *sessions* — each user steering
//! their own pipeline — served from one front end.  [`MultiFrontEnd`]
//! owns a single [`HttpServer`] (thread pool or readiness reactor, same
//! as [`crate::server::FrontEndServer`]) and a live registry of session
//! endpoints.  Every session-scoped route of the single-session front end
//! is available under a `/s/<id>/` prefix:
//!
//! * `GET /s/7/api/poll?...` — long-poll session 7's hub,
//! * `GET /s/7/api/client`, `/s/7/api/state`, `/s/7/api/frame`,
//!   `/s/7/api/stats`, `POST /s/7/api/steer` — exactly the routes of
//!   [`crate::server::route`], dispatched to session 7's hub and inbox,
//! * `GET /api/sessions` — the ids currently registered.
//!
//! Sessions are added and retired while the server runs
//! ([`MultiFrontEnd::add_session`] / [`MultiFrontEnd::retire_session`]):
//! the session manager (`ricsa-core`'s `sessions` module) spawns a hub
//! per steering loop and retires it when the loop ends.  Polls for a
//! retired (or never-registered) session answer `404`.
//!
//! Isolation invariant: a client polling `/s/<id>/...` can only ever
//! receive frames published into session `<id>`'s hub — the registry
//! lookup happens before the hub is touched, and hubs share nothing (each
//! has its own ring, cursors, and epoch).  The `multi_session` end-to-end
//! test audits this at the wire level with racing pollers.

use crate::http::{HttpRequest, HttpResponse, HttpServer, Outcome, PoolMetrics};
use crate::hub::{SessionHub, SteeringInbox};
use crate::readiness::Waker;
use crate::server::{route, FrontEndConfig};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::{Arc, RwLock};

/// One session's serving endpoints: the hub frames are published into and
/// the steering inbox the simulation side drains.
#[derive(Clone)]
pub struct SessionEndpoints {
    /// The session's frame hub.
    pub hub: SessionHub,
    /// The session's steering inbox.
    pub inbox: SteeringInbox,
}

/// The live session registry, shared between the route handler and the
/// session manager.
type Registry = Arc<RwLock<BTreeMap<u64, SessionEndpoints>>>;

/// A running multi-session front end.
pub struct MultiFrontEnd {
    http: HttpServer,
    registry: Registry,
    waker: Option<Waker>,
    config: FrontEndConfig,
}

impl MultiFrontEnd {
    /// Start on `addr` with the default [`FrontEndConfig`].
    pub fn start(addr: &str) -> std::io::Result<MultiFrontEnd> {
        MultiFrontEnd::start_with(addr, FrontEndConfig::default())
    }

    /// Start with explicit pool/hub sizing.  Hub sizing applies to every
    /// session hub subsequently added.
    pub fn start_with(addr: &str, config: FrontEndConfig) -> std::io::Result<MultiFrontEnd> {
        let registry: Registry = Arc::new(RwLock::new(BTreeMap::new()));
        let metrics = Arc::new(PoolMetrics::default());
        let route_registry = registry.clone();
        let route_metrics = metrics.clone();
        let http =
            HttpServer::start_with_metrics(addr, config.http.clone(), metrics, move |req| {
                route_session(&route_registry, &route_metrics, req)
            })?;
        let waker = http.waker();
        Ok(MultiFrontEnd {
            http,
            registry,
            waker,
            config,
        })
    }

    /// Register session `id`, creating its hub and inbox (wired to the
    /// readiness waker, so parked `/s/<id>/api/poll` long-polls wake on
    /// publish).  Idempotent: an already-registered id returns its
    /// existing endpoints.
    pub fn add_session(&self, id: u64) -> SessionEndpoints {
        let mut registry = self.registry.write().expect("registry poisoned");
        if let Some(existing) = registry.get(&id) {
            return existing.clone();
        }
        let hub = SessionHub::with_limits(self.config.hub_capacity, self.config.max_clients);
        if let Some(waker) = &self.waker {
            let waker = waker.clone();
            hub.add_wake_hook(move || waker.ring());
        }
        let endpoints = SessionEndpoints {
            hub,
            inbox: SteeringInbox::new(),
        };
        registry.insert(id, endpoints.clone());
        endpoints
    }

    /// Retire session `id`: its routes answer `404` from now on.  Returns
    /// whether the id was registered.  In-flight long-polls holding the
    /// hub resolve on their own deadlines; the hub's memory is freed when
    /// the last handle drops.
    pub fn retire_session(&self, id: u64) -> bool {
        self.registry
            .write()
            .expect("registry poisoned")
            .remove(&id)
            .is_some()
    }

    /// The endpoints of a registered session.
    pub fn session(&self, id: u64) -> Option<SessionEndpoints> {
        self.registry
            .read()
            .expect("registry poisoned")
            .get(&id)
            .cloned()
    }

    /// Currently registered session ids, ascending.
    pub fn session_ids(&self) -> Vec<u64> {
        self.registry
            .read()
            .expect("registry poisoned")
            .keys()
            .copied()
            .collect()
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.http.addr()
    }

    /// Total HTTP requests served since start.
    pub fn requests_served(&self) -> u64 {
        self.http.requests_served()
    }

    /// Shut the server down gracefully.
    pub fn shutdown(self) {
        self.http.shutdown();
    }
}

/// Route a request against the session registry (exposed for tests).
/// `/s/<id>/<rest>` is dispatched to session `<id>`'s endpoints with the
/// path rewritten to `/<rest>`; `/api/sessions` lists registered ids.
pub fn route_session(
    registry: &RwLock<BTreeMap<u64, SessionEndpoints>>,
    metrics: &PoolMetrics,
    mut req: HttpRequest,
) -> Outcome {
    if req.method == "GET" && req.path == "/api/sessions" {
        let ids: Vec<u64> = registry
            .read()
            .expect("registry poisoned")
            .keys()
            .copied()
            .collect();
        return HttpResponse::json(&serde_json::json!({ "sessions": ids })).into();
    }
    let Some(rest) = req.path.strip_prefix("/s/") else {
        return HttpResponse::not_found().into();
    };
    let (id_str, sub_path) = match rest.split_once('/') {
        Some((id, sub)) => (id, format!("/{sub}")),
        None => (rest, "/".to_string()),
    };
    let Ok(id) = id_str.parse::<u64>() else {
        return HttpResponse::bad_request("session id must be an integer").into();
    };
    let endpoints = registry
        .read()
        .expect("registry poisoned")
        .get(&id)
        .cloned();
    match endpoints {
        Some(endpoints) => {
            req.path = sub_path;
            route(&endpoints.hub, &endpoints.inbox, metrics, req)
        }
        None => HttpResponse::not_found().into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hub::Frame;
    use std::collections::HashMap;
    use std::time::Duration;

    fn get(path: &str, query: &[(&str, &str)]) -> HttpRequest {
        HttpRequest {
            method: "GET".into(),
            path: path.into(),
            version: "HTTP/1.1".into(),
            query: query
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            headers: HashMap::new(),
            body: vec![],
            connection: 0,
        }
    }

    fn resolve(outcome: Outcome) -> HttpResponse {
        match outcome {
            Outcome::Ready(resp) => resp,
            Outcome::Pending(mut pending) => loop {
                if let Some(resp) = pending() {
                    break resp;
                }
                std::thread::sleep(Duration::from_millis(1));
            },
        }
    }

    fn frame(tag: f64) -> Frame {
        Frame {
            sequence: 0,
            cycle: 1,
            time: 0.5,
            image: ricsa_viz::image::Image::filled(4, 4, [tag as u8, 0, 0, 255]).encode_raw(),
            monitors: vec![("session".into(), tag)],
        }
    }

    #[test]
    fn sessions_route_to_their_own_hubs_and_404_after_retire() {
        let front = MultiFrontEnd::start("127.0.0.1:0").unwrap();
        let a = front.add_session(1);
        let b = front.add_session(2);
        a.hub.publish(frame(1.0));
        b.hub.publish(frame(2.0));
        b.hub.publish(frame(2.0));
        let registry = front.registry.clone();
        let metrics = PoolMetrics::default();
        // Each session's state reflects only its own publishes.
        for (id, expect_seq) in [(1u64, 1u64), (2, 2)] {
            let resp = resolve(route_session(
                &registry,
                &metrics,
                get(&format!("/s/{id}/api/state"), &[]),
            ));
            let value: serde_json::Value = serde_json::from_slice(resp.body.as_bytes()).unwrap();
            assert_eq!(value["latest_sequence"].as_u64(), Some(expect_seq));
            assert_eq!(value["monitors"][0][1].as_f64(), Some(id as f64));
        }
        // The listing shows both, and unknown/retired sessions 404.
        let resp = resolve(route_session(
            &registry,
            &metrics,
            get("/api/sessions", &[]),
        ));
        let value: serde_json::Value = serde_json::from_slice(resp.body.as_bytes()).unwrap();
        assert_eq!(value["sessions"][0].as_u64(), Some(1));
        assert_eq!(value["sessions"][1].as_u64(), Some(2));
        assert_eq!(
            resolve(route_session(
                &registry,
                &metrics,
                get("/s/9/api/state", &[])
            ))
            .status,
            404
        );
        assert!(front.retire_session(2));
        assert!(!front.retire_session(2));
        assert_eq!(
            resolve(route_session(
                &registry,
                &metrics,
                get("/s/2/api/state", &[])
            ))
            .status,
            404
        );
        // Malformed ids are rejected, non-session paths unknown.
        assert_eq!(
            resolve(route_session(
                &registry,
                &metrics,
                get("/s/x/api/state", &[])
            ))
            .status,
            400
        );
        assert_eq!(
            resolve(route_session(&registry, &metrics, get("/api/state", &[]))).status,
            404
        );
        front.shutdown();
    }

    #[test]
    fn add_session_is_idempotent_and_hubs_are_distinct() {
        let front = MultiFrontEnd::start("127.0.0.1:0").unwrap();
        let a = front.add_session(5);
        let again = front.add_session(5);
        a.hub.publish(frame(5.0));
        assert_eq!(again.hub.latest_sequence(), 1, "same hub behind one id");
        let other = front.add_session(6);
        assert_eq!(other.hub.latest_sequence(), 0, "distinct hub per id");
        assert_eq!(front.session_ids(), vec![5, 6]);
        front.shutdown();
    }
}
