//! The embedded single-page Ajax client.
//!
//! A plain-JavaScript stand-in for the paper's GWT page: it long-polls
//! `/api/poll` with `XMLHttpRequest`, redraws only the image canvas and the
//! monitored values when a new frame arrives (partial screen update), and
//! posts steering parameters to `/api/steer` without reloading the page.

/// The HTML/JavaScript page served at `/`.
pub const INDEX_HTML: &str = r#"<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>RICSA — computational monitoring and steering</title>
<style>
 body { font-family: sans-serif; margin: 1.5em; background: #181c20; color: #e8e8e8; }
 h1 { font-size: 1.2em; }
 #layout { display: flex; gap: 2em; }
 canvas { border: 1px solid #555; image-rendering: pixelated; background: #000; }
 .panel { min-width: 20em; }
 label { display: block; margin-top: 0.6em; }
 input { width: 6em; }
 #status { margin-top: 1em; color: #9fd49f; }
 table { border-collapse: collapse; margin-top: 0.8em; }
 td { padding: 0.15em 0.8em 0.15em 0; }
</style>
</head>
<body>
<h1>RICSA — remote monitoring &amp; steering (Ajax front end)</h1>
<div id="layout">
  <div>
    <canvas id="view" width="256" height="256"></canvas>
    <div id="status">waiting for frames…</div>
  </div>
  <div class="panel">
    <h2>Monitored values</h2>
    <table id="monitors"></table>
    <h2>Steering</h2>
    <label>CFL <input id="cfl" type="number" step="0.05" value="0.4"></label>
    <label>Gamma <input id="gamma" type="number" step="0.01" value="1.4"></label>
    <label>Drive strength <input id="drive" type="number" step="0.1" value="1.0"></label>
    <label>Inflow velocity <input id="inflow" type="number" step="0.1" value="2.0"></label>
    <button id="steer">Apply steering</button>
  </div>
</div>
<script>
var lastSeq = 0;
function drawFrame(frame) {
  var canvas = document.getElementById('view');
  var ctx = canvas.getContext('2d');
  var bytes = atob(frame.image_base64);
  // RICSAIMG header: 8 magic + 4 width + 4 height, then RGBA.
  var w = (bytes.charCodeAt(8)) | (bytes.charCodeAt(9) << 8) | (bytes.charCodeAt(10) << 16);
  var h = (bytes.charCodeAt(12)) | (bytes.charCodeAt(13) << 8) | (bytes.charCodeAt(14) << 16);
  canvas.width = w; canvas.height = h;
  var img = ctx.createImageData(w, h);
  for (var i = 0; i < w * h * 4; i++) { img.data[i] = bytes.charCodeAt(16 + i); }
  ctx.putImageData(img, 0, 0);
  var table = document.getElementById('monitors');
  table.innerHTML = '';
  frame.monitors.forEach(function(m) {
    var row = table.insertRow();
    row.insertCell().textContent = m[0];
    row.insertCell().textContent = Number(m[1]).toPrecision(5);
  });
  document.getElementById('status').textContent =
    'cycle ' + frame.cycle + '  t=' + Number(frame.time).toFixed(4) + '  frame #' + frame.sequence;
}
function poll() {
  var xhr = new XMLHttpRequest();
  xhr.open('GET', '/api/poll?since=' + lastSeq + '&timeout_ms=15000');
  xhr.onload = function() {
    if (xhr.status === 200 && xhr.responseText) {
      var frame = JSON.parse(xhr.responseText);
      if (frame && frame.sequence) { lastSeq = frame.sequence; drawFrame(frame); }
    }
    poll();
  };
  xhr.onerror = function() { setTimeout(poll, 1000); };
  xhr.send();
}
document.getElementById('steer').onclick = function() {
  var body = JSON.stringify({
    cfl: parseFloat(document.getElementById('cfl').value),
    gamma: parseFloat(document.getElementById('gamma').value),
    drive_strength: parseFloat(document.getElementById('drive').value),
    inflow_velocity: parseFloat(document.getElementById('inflow').value),
    end_cycle: 1000000
  });
  var xhr = new XMLHttpRequest();
  xhr.open('POST', '/api/steer');
  xhr.setRequestHeader('Content-Type', 'application/json');
  xhr.send(body);
};
poll();
</script>
</body>
</html>
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_contains_the_ajax_machinery() {
        assert!(INDEX_HTML.contains("XMLHttpRequest"));
        assert!(INDEX_HTML.contains("/api/poll"));
        assert!(INDEX_HTML.contains("/api/steer"));
        assert!(INDEX_HTML.contains("RICSAIMG"));
    }
}
