//! The embedded single-page Ajax client.
//!
//! A plain-JavaScript stand-in for the paper's GWT page: it registers a
//! client id, long-polls `/api/poll` with `XMLHttpRequest` in **delta
//! mode**, and when a new frame arrives redraws only the image canvas and
//! the monitored values (partial screen update) — a delta response patches
//! only the changed tiles into the retained pixel buffer.  Steering
//! parameters are posted to `/api/steer` without reloading the page.

/// The HTML/JavaScript page served at `/`.
pub const INDEX_HTML: &str = r#"<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>RICSA — computational monitoring and steering</title>
<style>
 body { font-family: sans-serif; margin: 1.5em; background: #181c20; color: #e8e8e8; }
 h1 { font-size: 1.2em; }
 #layout { display: flex; gap: 2em; }
 canvas { border: 1px solid #555; image-rendering: pixelated; background: #000; }
 .panel { min-width: 20em; }
 label { display: block; margin-top: 0.6em; }
 input { width: 6em; }
 #status { margin-top: 1em; color: #9fd49f; }
 table { border-collapse: collapse; margin-top: 0.8em; }
 td { padding: 0.15em 0.8em 0.15em 0; }
</style>
</head>
<body>
<h1>RICSA — remote monitoring &amp; steering (Ajax front end)</h1>
<div id="layout">
  <div>
    <canvas id="view" width="256" height="256"></canvas>
    <div id="status">waiting for frames…</div>
  </div>
  <div class="panel">
    <h2>Monitored values</h2>
    <table id="monitors"></table>
    <h2>Steering</h2>
    <label>CFL <input id="cfl" type="number" step="0.05" value="0.4"></label>
    <label>Gamma <input id="gamma" type="number" step="0.01" value="1.4"></label>
    <label>Drive strength <input id="drive" type="number" step="0.1" value="1.0"></label>
    <label>Inflow velocity <input id="inflow" type="number" step="0.1" value="2.0"></label>
    <button id="steer">Apply steering</button>
  </div>
</div>
<script>
var lastSeq = 0;
var clientId = null;
// Retained frame state: delta responses patch `pix` in place, so only the
// changed tiles are decoded and redrawn (the paper's partial screen update
// carried through to the wire).  `hubEpoch` marks which server incarnation
// the retained pixels belong to — after a restart, deltas from the new
// epoch must not be patched onto old-epoch pixels.  `forceFull` requests
// the full encoding whenever there is no applicable pixel buffer (first
// frame, unapplicable delta, epoch change) — the sequence cursor is kept,
// so re-syncing never replays the retained backlog.
var pix = null, pixW = 0, pixH = 0, hubEpoch = null, forceFull = true;

function bytesOf(b64) { var s = atob(b64), a = new Uint8Array(s.length);
  for (var i = 0; i < s.length; i++) { a[i] = s.charCodeAt(i); } return a; }

// The hub's wire codec (pixel-granular PackBits): a 4-byte original length
// (LE), then records over 4-byte pixel units — control 0..127 is followed
// by control+1 literal pixels, control 128..255 by one pixel repeated
// (control-126) times; the trailing len%4 bytes are stored raw.
function rleDecode(src) {
  var n = src[0] | (src[1] << 8) | (src[2] << 16) | (src[3] << 24);
  var out = new Uint8Array(n), at = 4, o = 0, body = n - (n % 4);
  while (o < body) {
    var c = src[at++];
    if (c < 128) {
      var take = (c + 1) * 4;
      out.set(src.subarray(at, at + take), o); at += take; o += take;
    } else {
      var reps = c - 126, unit = src.subarray(at, at + 4);
      for (var r = 0; r < reps; r++) { out.set(unit, o); o += 4; }
      at += 4;
    }
  }
  out.set(src.subarray(at, at + (n % 4)), o);
  return out;
}

function redraw(frame) {
  var canvas = document.getElementById('view');
  canvas.width = pixW; canvas.height = pixH;
  var ctx = canvas.getContext('2d');
  var img = ctx.createImageData(pixW, pixH);
  img.data.set(pix);
  ctx.putImageData(img, 0, 0);
  var table = document.getElementById('monitors');
  table.innerHTML = '';
  frame.monitors.forEach(function(m) {
    var row = table.insertRow();
    row.insertCell().textContent = m[0];
    row.insertCell().textContent = Number(m[1]).toPrecision(5);
  });
  document.getElementById('status').textContent =
    'cycle ' + frame.cycle + '  t=' + Number(frame.time).toFixed(4) +
    '  frame #' + frame.sequence + (frame.mode === 'delta' ? '  (delta)' : '');
}

function applyFull(frame) {
  var bytes = bytesOf(frame.image_base64);
  if (frame.codec === 'rle') { bytes = rleDecode(bytes); }
  // RICSAIMG header: 8 magic + 4 width + 4 height (LE), then RGBA.
  pixW = bytes[8] | (bytes[9] << 8) | (bytes[10] << 16);
  pixH = bytes[12] | (bytes[13] << 8) | (bytes[14] << 16);
  pix = bytes.subarray(16);
}

function applyDelta(frame) {
  frame.tiles.forEach(function(t) {
    var data = bytesOf(t.data_base64), off = 0;
    if (t.rle) { data = rleDecode(data); }
    for (var row = t.y; row < t.y + t.h; row++) {
      pix.set(data.subarray(off, off + t.w * 4), (row * pixW + t.x) * 4);
      off += t.w * 4;
    }
  });
}

function drawFrame(frame) {
  if (frame.mode === 'delta') {
    if (!pix || frame.base_sequence !== lastSeq) { return false; } // need a full frame
    applyDelta(frame);
  } else {
    applyFull(frame);
  }
  redraw(frame);
  return true;
}

// Every poll response (frame or timeout) carries the hub epoch; a change
// means the server restarted, so retained pixels and the since cursor are
// both stale and must be reset before the next poll.
function noteEpoch(resp) {
  if (resp && resp.epoch !== undefined && resp.epoch !== hubEpoch) {
    if (hubEpoch !== null) { pix = null; lastSeq = 0; forceFull = true; }
    hubEpoch = resp.epoch;
  }
}

function poll() {
  var xhr = new XMLHttpRequest();
  xhr.open('GET', '/api/poll?since=' + lastSeq + '&timeout_ms=15000' +
    '&mode=' + (forceFull ? 'full' : 'delta') +
    (clientId !== null ? '&client=' + clientId : ''));
  xhr.onload = function() {
    if (xhr.status === 200 && xhr.responseText) {
      var frame = JSON.parse(xhr.responseText);
      noteEpoch(frame);
      if (frame && frame.sequence) {
        if (drawFrame(frame)) { lastSeq = frame.sequence; forceFull = false; }
        else { forceFull = true; } // unapplicable delta: refetch in full, same cursor
      }
    }
    poll();
  };
  xhr.onerror = function() { setTimeout(poll, 1000); };
  xhr.send();
}

document.getElementById('steer').onclick = function() {
  var body = JSON.stringify({
    cfl: parseFloat(document.getElementById('cfl').value),
    gamma: parseFloat(document.getElementById('gamma').value),
    drive_strength: parseFloat(document.getElementById('drive').value),
    inflow_velocity: parseFloat(document.getElementById('inflow').value),
    end_cycle: 1000000
  });
  var xhr = new XMLHttpRequest();
  xhr.open('POST', '/api/steer');
  xhr.setRequestHeader('Content-Type', 'application/json');
  xhr.send(body);
};

// Register a client id so the hub tracks this browser's cursor, start the
// cursor at the live head (no replay of the retained backlog), then start
// the long-poll loop (polling works without the id too).
(function() {
  var xhr = new XMLHttpRequest();
  xhr.open('GET', '/api/client');
  xhr.onload = function() {
    if (xhr.status === 200) {
      try {
        var reg = JSON.parse(xhr.responseText);
        clientId = reg.client;
        lastSeq = reg.latest_sequence || 0;
        noteEpoch(reg);
      } catch (e) {}
    }
    poll();
  };
  xhr.onerror = function() { poll(); };
  xhr.send();
})();
</script>
</body>
</html>
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_contains_the_ajax_machinery() {
        assert!(INDEX_HTML.contains("XMLHttpRequest"));
        assert!(INDEX_HTML.contains("/api/poll"));
        assert!(INDEX_HTML.contains("/api/steer"));
        assert!(INDEX_HTML.contains("/api/client"));
        assert!(INDEX_HTML.contains("&mode="));
        assert!(INDEX_HTML.contains("'delta'"));
        assert!(INDEX_HTML.contains("base_sequence"));
        assert!(INDEX_HTML.contains("hubEpoch"));
        assert!(INDEX_HTML.contains("forceFull"));
        assert!(INDEX_HTML.contains("RICSAIMG"));
        // The wire codec: full frames and delta tiles may arrive
        // run-length coded.
        assert!(INDEX_HTML.contains("rleDecode"));
        assert!(INDEX_HTML.contains("frame.codec === 'rle'"));
        assert!(INDEX_HTML.contains("t.rle"));
    }
}
