//! The front-end server: HTTP routes wired to the session hub.
//!
//! Routes (all consumed by the embedded page, `curl`, or any browser):
//!
//! * `GET /` — the Ajax page,
//! * `GET /api/state` — current frame sequence, cycle and monitors as JSON,
//! * `GET /api/client` — register a polling client, returning its id (the
//!   hub then tracks the client's cursor server-side),
//! * `GET /api/poll?since=N&timeout_ms=T&mode=full|delta&client=ID` —
//!   long-poll for the next frame newer than `N` (the `XMLHttpRequest`
//!   object-exchange of the paper).  `mode=delta` ships only the changed
//!   image tiles when the client is exactly one frame behind; `client=ID`
//!   lets the hub supply `since` from the stored cursor.  Cursors are
//!   delivery-acknowledged: a computed response is only *staged*, and
//!   commits when the client's next poll arrives on the same connection
//!   (or carries an explicit `since`), so a response that dies with its
//!   socket is re-delivered rather than skipped.  The long poll never
//!   blocks a server worker: the route returns a deferred
//!   [`Outcome::Pending`] the pool re-polls,
//! * `GET /api/frame` — the latest frame immediately (or 404),
//! * `GET /api/stats` — server-side backpressure metrics (run-queue depth,
//!   worker rotation latency, per-visit service time, parked long-polls),
//!   so overload is observable *before* the 503 connection limit trips,
//! * `POST /api/steer` — submit steering parameters as JSON.
//!
//! Poll responses come straight from the hub's encode-once cache as shared
//! `Arc<str>` payloads — the route layer never re-encodes a frame.

use crate::http::{HttpRequest, HttpResponse, HttpServer, HttpServerConfig, Outcome, PoolMetrics};
use crate::hub::{PollMode, SessionHub, SteeringInbox};
use crate::page::INDEX_HTML;
use crate::readiness::Backend;
use ricsa_hydro::steering::SteerableParams;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sizing knobs for the whole front end: the HTTP pool plus the hub.
#[derive(Debug, Clone)]
pub struct FrontEndConfig {
    /// HTTP pool configuration (workers, connection limit, keep-alive).
    pub http: HttpServerConfig,
    /// Frames retained by the hub for laggard pollers.
    pub hub_capacity: usize,
    /// Registered client-cursor ceiling (stalest evicted beyond it).
    pub max_clients: usize,
}

impl Default for FrontEndConfig {
    fn default() -> Self {
        FrontEndConfig {
            // The front end defaults to the readiness backend where the
            // platform has it: long-polls park in the kernel and the hub's
            // wake hook rings them awake on publish.
            http: HttpServerConfig {
                backend: Backend::auto(),
                ..HttpServerConfig::default()
            },
            hub_capacity: 32,
            max_clients: 1024,
        }
    }
}

/// The running Ajax front-end server.
pub struct FrontEndServer {
    http: HttpServer,
    hub: SessionHub,
    inbox: SteeringInbox,
}

impl FrontEndServer {
    /// Start the front end on `addr` (e.g. `"127.0.0.1:0"` for an ephemeral
    /// port) with the default [`FrontEndConfig`].  The returned hub/inbox
    /// handles are shared with the visualization and simulation sides.
    pub fn start(addr: &str) -> std::io::Result<FrontEndServer> {
        FrontEndServer::start_with(addr, FrontEndConfig::default())
    }

    /// Start the front end with explicit pool/hub sizing.
    pub fn start_with(addr: &str, config: FrontEndConfig) -> std::io::Result<FrontEndServer> {
        let hub = SessionHub::with_limits(config.hub_capacity, config.max_clients);
        let inbox = SteeringInbox::new();
        // The metrics object outlives the closure/server split: the route
        // handler reads from it, the pool writes into it.
        let metrics = Arc::new(PoolMetrics::default());
        let route_hub = hub.clone();
        let route_inbox = inbox.clone();
        let route_metrics = metrics.clone();
        let http = HttpServer::start_with_metrics(addr, config.http, metrics, move |req| {
            route(&route_hub, &route_inbox, &route_metrics, req)
        })?;
        // Readiness backend: ring the reactor doorbell on every publish so
        // parked long-polls wake the moment their frame exists.  The hub
        // runs hooks only after the new frame is readable, so a woken
        // worker always finds it.
        if let Some(waker) = http.waker() {
            hub.add_wake_hook(move || waker.ring());
        }
        Ok(FrontEndServer { http, hub, inbox })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.http.addr()
    }

    /// The frame hub the visualization side publishes into.
    pub fn hub(&self) -> SessionHub {
        self.hub.clone()
    }

    /// The steering inbox the simulation side drains.
    pub fn inbox(&self) -> SteeringInbox {
        self.inbox.clone()
    }

    /// Connections currently open.
    pub fn active_connections(&self) -> usize {
        self.http.active_connections()
    }

    /// Total HTTP requests served since start.
    pub fn requests_served(&self) -> u64 {
        self.http.requests_served()
    }

    /// The pool's live backpressure metrics (what `/api/stats` serves).
    pub fn metrics(&self) -> Arc<PoolMetrics> {
        self.http.metrics()
    }

    /// Shut the server down gracefully (see [`HttpServer::shutdown`]).
    pub fn shutdown(self) {
        self.http.shutdown();
    }
}

/// Route a request (exposed for tests).
pub fn route(
    hub: &SessionHub,
    inbox: &SteeringInbox,
    metrics: &PoolMetrics,
    req: HttpRequest,
) -> Outcome {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/") | ("GET", "/index.html") => HttpResponse::ok("text/html", INDEX_HTML).into(),
        ("GET", "/api/state") => {
            let latest = hub.latest_frame();
            HttpResponse::json(&serde_json::json!({
                "latest_sequence": hub.latest_sequence(),
                "cycle": latest.as_ref().map(|f| f.cycle),
                "time": latest.as_ref().map(|f| f.time),
                "monitors": latest.as_ref().map(|f| f.monitors.clone()).unwrap_or_default(),
                "pending_steering": inbox.len(),
                "clients": hub.client_count(),
                "epoch": hub.epoch(),
            }))
            .into()
        }
        ("GET", "/api/client") => {
            let client = hub.register_client();
            HttpResponse::json(&serde_json::json!({
                "client": client,
                "latest_sequence": hub.latest_sequence(),
                "epoch": hub.epoch(),
            }))
            .into()
        }
        ("GET", "/api/frame") => match hub.latest_payload() {
            Some(payload) => HttpResponse::json_shared(payload.json).into(),
            None => HttpResponse::not_found().into(),
        },
        ("GET", "/api/stats") => {
            let snapshot = metrics.snapshot();
            let mut value = serde_json::to_value(&snapshot);
            if let serde_json::Value::Object(map) = &mut value {
                // Hub-side load next to the pool-side backpressure, so one
                // request paints the whole serving picture.
                map.insert("clients".into(), serde_json::json!(hub.client_count()));
                map.insert(
                    "latest_sequence".into(),
                    serde_json::json!(hub.latest_sequence()),
                );
                map.insert("encode_count".into(), serde_json::json!(hub.encode_count()));
                map.insert("pending_steering".into(), serde_json::json!(inbox.len()));
            }
            HttpResponse::json(&value).into()
        }
        ("GET", "/api/poll") => {
            let mode = match req.query_param("mode") {
                Some("delta") => PollMode::Delta,
                _ => PollMode::Full,
            };
            let client: Option<u64> = req.query_param("client").and_then(|s| s.parse().ok());
            let explicit_since: Option<u64> = req.query_param("since").and_then(|s| s.parse().ok());
            // Delivery acknowledgement happens here, on poll *arrival*:
            // an explicit `since` is direct evidence the client holds
            // that frame, and any staged delivery from this client's
            // previous poll commits only if this request arrived on the
            // same connection (otherwise the response died with its
            // socket and the frame must be re-delivered).
            let acked_cursor = client.and_then(|c| {
                if let Some(n) = explicit_since {
                    hub.update_cursor(c, n);
                }
                hub.ack_poll(c, req.connection)
            });
            let since: u64 = match explicit_since {
                Some(n) => n,
                // No explicit `since`: fall back to the acknowledged
                // cursor (0 for unknown/evicted clients, delivering the
                // oldest retained frame).
                None => acked_cursor.unwrap_or(0),
            };
            let timeout_ms: u64 = req
                .query_param("timeout_ms")
                .and_then(|s| s.parse().ok())
                .unwrap_or(15_000)
                .min(60_000);
            let deadline = Instant::now() + Duration::from_millis(timeout_ms);
            let hub = hub.clone();
            let connection = req.connection;
            // Deferred response: the HTTP pool re-polls this closure until
            // a frame arrives or the deadline passes.  No worker blocks.
            Outcome::Pending(Box::new(move || {
                if let Some(payload) = hub.try_payload(since, mode) {
                    if let Some(client) = client {
                        // Stage, don't commit: the cursor advances only
                        // when the client's next poll on this connection
                        // proves the response was actually read.
                        hub.stage_cursor(client, connection, payload.sequence);
                    }
                    return Some(HttpResponse::json_shared(payload.json));
                }
                if Instant::now() >= deadline {
                    // The timeout response carries the epoch too: a client
                    // whose stale `since` exceeds this incarnation's
                    // counter would otherwise only see nulls and could
                    // never detect the restart.
                    return Some(HttpResponse::json(&serde_json::json!({
                        "sequence": null,
                        "epoch": hub.epoch(),
                    })));
                }
                None
            }))
        }
        ("POST", "/api/steer") => match serde_json::from_slice::<SteerableParams>(&req.body) {
            Ok(params) => {
                inbox.post(params.sanitized());
                HttpResponse::json(&serde_json::json!({ "accepted": true })).into()
            }
            Err(e) => {
                HttpResponse::bad_request(&format!("invalid steering parameters: {e}")).into()
            }
        },
        _ => HttpResponse::not_found().into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hub::Frame;
    use std::collections::HashMap;

    fn get(path: &str, query: &[(&str, &str)]) -> HttpRequest {
        get_on(path, query, 0)
    }

    fn get_on(path: &str, query: &[(&str, &str)], connection: u64) -> HttpRequest {
        HttpRequest {
            method: "GET".into(),
            path: path.into(),
            version: "HTTP/1.1".into(),
            query: query
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            headers: HashMap::new(),
            body: vec![],
            connection,
        }
    }

    fn resolve(outcome: Outcome) -> HttpResponse {
        match outcome {
            Outcome::Ready(resp) => resp,
            Outcome::Pending(mut pending) => loop {
                if let Some(resp) = pending() {
                    break resp;
                }
                std::thread::sleep(Duration::from_millis(1));
            },
        }
    }

    fn sample_frame() -> Frame {
        Frame {
            sequence: 0,
            cycle: 4,
            time: 0.25,
            image: {
                let img = ricsa_viz::image::Image::filled(2, 2, [10, 20, 30, 255]);
                img.encode_raw()
            },
            monitors: vec![("max_pressure".into(), 2.5)],
        }
    }

    #[test]
    fn index_and_unknown_routes() {
        let hub = SessionHub::default();
        let inbox = SteeringInbox::new();
        let metrics = PoolMetrics::default();
        let index = resolve(route(&hub, &inbox, &metrics, get("/", &[])));
        assert_eq!(index.status, 200);
        assert!(String::from_utf8_lossy(index.body.as_bytes()).contains("XMLHttpRequest"));
        assert_eq!(
            resolve(route(&hub, &inbox, &metrics, get("/nope", &[]))).status,
            404
        );
    }

    #[test]
    fn state_and_frame_routes_reflect_published_frames() {
        let hub = SessionHub::default();
        let inbox = SteeringInbox::new();
        let metrics = PoolMetrics::default();
        assert_eq!(
            resolve(route(&hub, &inbox, &metrics, get("/api/frame", &[]))).status,
            404
        );
        hub.publish(sample_frame());
        let state = resolve(route(&hub, &inbox, &metrics, get("/api/state", &[])));
        let value: serde_json::Value = serde_json::from_slice(state.body.as_bytes()).unwrap();
        assert_eq!(value["latest_sequence"], 1);
        assert_eq!(value["cycle"], 4);
        let frame = resolve(route(&hub, &inbox, &metrics, get("/api/frame", &[])));
        let value: serde_json::Value = serde_json::from_slice(frame.body.as_bytes()).unwrap();
        assert_eq!(value["sequence"], 1);
        // Codec-aware decode recovers the raw RICSAIMG container bytes.
        let image = crate::hub::image_from_json(&value).unwrap();
        assert!(image.starts_with(b"RICSAIMG"));
    }

    #[test]
    fn poll_route_returns_new_frames_and_null_on_timeout() {
        let hub = SessionHub::default();
        let inbox = SteeringInbox::new();
        let metrics = PoolMetrics::default();
        hub.publish(sample_frame());
        let poll = resolve(route(
            &hub,
            &inbox,
            &metrics,
            get("/api/poll", &[("since", "0"), ("timeout_ms", "10")]),
        ));
        let value: serde_json::Value = serde_json::from_slice(poll.body.as_bytes()).unwrap();
        assert_eq!(value["sequence"], 1);
        assert_eq!(value["mode"], "full");
        let empty = resolve(route(
            &hub,
            &inbox,
            &metrics,
            get("/api/poll", &[("since", "1"), ("timeout_ms", "10")]),
        ));
        let value: serde_json::Value = serde_json::from_slice(empty.body.as_bytes()).unwrap();
        assert!(value["sequence"].is_null());
    }

    #[test]
    fn poll_route_serves_deltas_in_delta_mode() {
        let hub = SessionHub::default();
        let inbox = SteeringInbox::new();
        let metrics = PoolMetrics::default();
        let mut img = ricsa_viz::image::Image::filled(64, 64, [10, 20, 30, 255]);
        hub.publish(Frame {
            image: img.encode_raw(),
            ..sample_frame()
        });
        img.set(3, 3, [0, 0, 0, 0]);
        hub.publish(Frame {
            image: img.encode_raw(),
            ..sample_frame()
        });
        let poll = resolve(route(
            &hub,
            &inbox,
            &metrics,
            get(
                "/api/poll",
                &[("since", "1"), ("timeout_ms", "10"), ("mode", "delta")],
            ),
        ));
        let value: serde_json::Value = serde_json::from_slice(poll.body.as_bytes()).unwrap();
        assert_eq!(value["mode"], "delta");
        assert_eq!(value["base_sequence"], 1);
        assert_eq!(value["sequence"], 2);
    }

    #[test]
    fn client_registration_and_cursor_driven_polls() {
        let hub = SessionHub::default();
        let inbox = SteeringInbox::new();
        let metrics = PoolMetrics::default();
        let reg = resolve(route(&hub, &inbox, &metrics, get("/api/client", &[])));
        let value: serde_json::Value = serde_json::from_slice(reg.body.as_bytes()).unwrap();
        let client = value["client"].as_u64().unwrap().to_string();
        hub.publish(sample_frame());
        // No `since`: the stored cursor (0) supplies it, and delivery
        // advances it.
        let poll = resolve(route(
            &hub,
            &inbox,
            &metrics,
            get(
                "/api/poll",
                &[("client", client.as_str()), ("timeout_ms", "10")],
            ),
        ));
        let value: serde_json::Value = serde_json::from_slice(poll.body.as_bytes()).unwrap();
        assert_eq!(value["sequence"], 1);
        // The cursor advanced: the same cursor-driven poll now times out.
        let empty = resolve(route(
            &hub,
            &inbox,
            &metrics,
            get(
                "/api/poll",
                &[("client", client.as_str()), ("timeout_ms", "10")],
            ),
        ));
        let value: serde_json::Value = serde_json::from_slice(empty.body.as_bytes()).unwrap();
        assert!(value["sequence"].is_null());
    }

    /// The delivery-acknowledged-cursor regression (ROADMAP follow-up): a
    /// poll response computed for a connection that dies undelivered must
    /// be re-delivered on the client's next poll, not silently skipped.
    #[test]
    fn cursor_driven_poll_redelivers_after_a_connection_change() {
        let hub = SessionHub::default();
        let inbox = SteeringInbox::new();
        let metrics = PoolMetrics::default();
        let reg = resolve(route(&hub, &inbox, &metrics, get("/api/client", &[])));
        let value: serde_json::Value = serde_json::from_slice(reg.body.as_bytes()).unwrap();
        let client = value["client"].as_u64().unwrap().to_string();
        hub.publish(sample_frame());
        let poll = |conn: u64| {
            let resp = resolve(route(
                &hub,
                &inbox,
                &metrics,
                get_on(
                    "/api/poll",
                    &[("client", client.as_str()), ("timeout_ms", "10")],
                    conn,
                ),
            ));
            let value: serde_json::Value = serde_json::from_slice(resp.body.as_bytes()).unwrap();
            value["sequence"].clone()
        };
        // Frame 1 is computed for connection 7 — but the next poll comes
        // from connection 9: the response evidently died with socket 7,
        // so the same frame is served again.
        assert_eq!(poll(7), serde_json::json!(1));
        assert_eq!(poll(9), serde_json::json!(1), "must re-deliver");
        // Polling again on connection 9 acknowledges it; now it times out.
        assert!(poll(9).is_null());
    }

    /// Wire-level version of the same regression: the socket carrying the
    /// poll response is killed before reading; a fresh connection's
    /// cursor-driven poll must receive the frame again.
    #[test]
    fn killed_socket_mid_response_forces_redelivery() {
        use crate::http::read_blocking_response;
        use std::io::{BufReader, Write};
        let server = FrontEndServer::start("127.0.0.1:0").unwrap();
        let hub = server.hub();
        // Register a client over a throwaway connection.
        let stream = std::net::TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writer
            .write_all(b"GET /api/client HTTP/1.1\r\nHost: l\r\n\r\n")
            .unwrap();
        let (_, _, body) = read_blocking_response(&mut reader).unwrap();
        let value: serde_json::Value = serde_json::from_slice(&body).unwrap();
        let client = value["client"].as_u64().unwrap();
        drop(reader);
        drop(writer);
        hub.publish(sample_frame());
        // The doomed connection: send the poll, kill the socket without
        // ever reading the response.
        let doomed = std::net::TcpStream::connect(server.addr()).unwrap();
        let mut w = doomed.try_clone().unwrap();
        w.write_all(
            format!("GET /api/poll?client={client}&timeout_ms=2000 HTTP/1.1\r\nHost: l\r\n\r\n")
                .as_bytes(),
        )
        .unwrap();
        // Give the server time to compute (and stage) the response, then
        // kill the socket with the response unread.
        std::thread::sleep(Duration::from_millis(150));
        drop(w);
        drop(doomed);
        // A fresh connection polls with the stored cursor: the staged
        // delivery belonged to the dead connection, so frame 1 comes
        // again instead of being skipped.
        let stream = std::net::TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writer
            .write_all(
                format!(
                    "GET /api/poll?client={client}&timeout_ms=2000 HTTP/1.1\r\nHost: l\r\n\r\n"
                )
                .as_bytes(),
            )
            .unwrap();
        let (status, _, body) = read_blocking_response(&mut reader).unwrap();
        assert_eq!(status, 200);
        let value: serde_json::Value = serde_json::from_slice(&body).unwrap();
        assert_eq!(
            value["sequence"],
            serde_json::json!(1),
            "frame whose response died with the socket must be re-delivered, got {value:?}"
        );
        server.shutdown();
    }

    #[test]
    fn steering_route_sanitizes_and_queues_parameters() {
        let hub = SessionHub::default();
        let inbox = SteeringInbox::new();
        let metrics = PoolMetrics::default();
        let body = serde_json::json!({
            "gamma": 1.4, "cfl": 7.0, "drive_strength": 1.0,
            "inflow_velocity": 2.0, "end_cycle": 100
        });
        let req = HttpRequest {
            method: "POST".into(),
            path: "/api/steer".into(),
            version: "HTTP/1.1".into(),
            query: HashMap::new(),
            headers: HashMap::new(),
            body: body.to_string().into_bytes(),
            connection: 0,
        };
        let resp = resolve(route(&hub, &inbox, &metrics, req));
        assert_eq!(resp.status, 200);
        let queued = inbox.drain_latest().unwrap();
        assert!(
            queued.cfl <= 0.9,
            "cfl must be sanitized, got {}",
            queued.cfl
        );
        // Malformed body.
        let bad = HttpRequest {
            method: "POST".into(),
            path: "/api/steer".into(),
            version: "HTTP/1.1".into(),
            query: HashMap::new(),
            headers: HashMap::new(),
            body: b"not json".to_vec(),
            connection: 0,
        };
        assert_eq!(resolve(route(&hub, &inbox, &metrics, bad)).status, 400);
    }

    #[test]
    fn stats_route_reports_pool_and_hub_metrics() {
        let hub = SessionHub::default();
        let inbox = SteeringInbox::new();
        let metrics = PoolMetrics::default();
        hub.publish(sample_frame());
        let stats = resolve(route(&hub, &inbox, &metrics, get("/api/stats", &[])));
        assert_eq!(stats.status, 200);
        let value: serde_json::Value = serde_json::from_slice(stats.body.as_bytes()).unwrap();
        // Pool-side gauges exist (zero on a fresh metrics object)...
        assert_eq!(value["queue_depth"], 0);
        assert_eq!(value["pending_responses"], 0);
        assert_eq!(value["requests_served"], 0);
        assert!(value["mean_rotation_us"].as_f64().is_some());
        assert!(value["mean_visit_us"].as_f64().is_some());
        // ...next to the hub-side load picture.
        assert_eq!(value["latest_sequence"], 1);
        assert!(value["encode_count"].as_u64().unwrap() >= 1);
        assert_eq!(value["pending_steering"], 0);
    }

    #[test]
    fn live_server_stats_reflect_real_traffic() {
        use crate::http::read_blocking_response;
        use std::io::{BufReader, Write};
        let server = FrontEndServer::start("127.0.0.1:0").unwrap();
        server.hub().publish(sample_frame());
        let stream = std::net::TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writer
            .write_all(b"GET /api/frame HTTP/1.1\r\nHost: l\r\n\r\n")
            .unwrap();
        let _ = read_blocking_response(&mut reader).unwrap();
        writer
            .write_all(b"GET /api/stats HTTP/1.1\r\nHost: l\r\n\r\n")
            .unwrap();
        let (status, _, body) = read_blocking_response(&mut reader).unwrap();
        assert_eq!(status, 200);
        let value: serde_json::Value = serde_json::from_slice(&body).unwrap();
        // This connection itself is active, visits happened, and both
        // requests (the frame fetch and this one) are counted by the time
        // the handler ran.
        assert!(value["active_connections"].as_u64().unwrap() >= 1);
        assert!(value["visits"].as_u64().unwrap() >= 1);
        assert!(value["requests_served"].as_u64().unwrap() >= 2);
        // The snapshot round-trips through the typed struct too.
        let snap: crate::http::PoolMetricsSnapshot = serde_json::from_slice(&body).unwrap();
        assert!(snap.visits >= 1);
        server.shutdown();
    }

    #[test]
    fn full_server_round_trip_with_keep_alive() {
        use crate::http::read_blocking_response;
        use std::io::{BufReader, Write};
        let server = FrontEndServer::start("127.0.0.1:0").unwrap();
        server.hub().publish(sample_frame());
        let stream = std::net::TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        // Two requests over one keep-alive connection.
        for _ in 0..2 {
            writer
                .write_all(b"GET /api/state HTTP/1.1\r\nHost: localhost\r\n\r\n")
                .unwrap();
            let (status, _, body) = read_blocking_response(&mut reader).unwrap();
            assert_eq!(status, 200);
            assert!(String::from_utf8_lossy(&body).contains("latest_sequence"));
        }
        assert_eq!(server.requests_served(), 2);
        server.shutdown();
    }
}
