//! The front-end server: HTTP routes wired to the session hub.
//!
//! Routes (all consumed by the embedded page, `curl`, or any browser):
//!
//! * `GET /` — the Ajax page,
//! * `GET /api/state` — current frame sequence, cycle and monitors as JSON,
//! * `GET /api/poll?since=N&timeout_ms=T` — long-poll for the next frame
//!   newer than `N` (the `XMLHttpRequest` object-exchange of the paper),
//! * `GET /api/frame` — the latest frame immediately (or 404),
//! * `POST /api/steer` — submit steering parameters as JSON.

use crate::http::{HttpRequest, HttpResponse, HttpServer};
use crate::hub::{Frame, SessionHub, SteeringInbox};
use crate::page::INDEX_HTML;
use ricsa_hydro::steering::SteerableParams;
use std::net::SocketAddr;
use std::time::Duration;

/// Base64 encoding (standard alphabet, with padding) for frame images.
fn base64_encode(data: &[u8]) -> String {
    const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [
            chunk[0],
            *chunk.get(1).unwrap_or(&0),
            *chunk.get(2).unwrap_or(&0),
        ];
        let n = ((b[0] as u32) << 16) | ((b[1] as u32) << 8) | b[2] as u32;
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

fn frame_to_json(frame: &Frame) -> serde_json::Value {
    serde_json::json!({
        "sequence": frame.sequence,
        "cycle": frame.cycle,
        "time": frame.time,
        "monitors": frame.monitors,
        "image_base64": base64_encode(&frame.image),
    })
}

/// The running Ajax front-end server.
pub struct FrontEndServer {
    http: HttpServer,
    hub: SessionHub,
    inbox: SteeringInbox,
}

impl FrontEndServer {
    /// Start the front end on `addr` (e.g. `"127.0.0.1:0"` for an ephemeral
    /// port).  The returned hub/inbox handles are shared with the
    /// visualization and simulation sides.
    pub fn start(addr: &str) -> std::io::Result<FrontEndServer> {
        let hub = SessionHub::default();
        let inbox = SteeringInbox::new();
        let route_hub = hub.clone();
        let route_inbox = inbox.clone();
        let http = HttpServer::start(addr, move |req| route(&route_hub, &route_inbox, req))?;
        Ok(FrontEndServer { http, hub, inbox })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.http.addr()
    }

    /// The frame hub the visualization side publishes into.
    pub fn hub(&self) -> SessionHub {
        self.hub.clone()
    }

    /// The steering inbox the simulation side drains.
    pub fn inbox(&self) -> SteeringInbox {
        self.inbox.clone()
    }

    /// Shut the server down.
    pub fn shutdown(self) {
        self.http.shutdown();
    }
}

/// Route a request (exposed for tests).
pub fn route(hub: &SessionHub, inbox: &SteeringInbox, req: HttpRequest) -> HttpResponse {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/") | ("GET", "/index.html") => HttpResponse::ok("text/html", INDEX_HTML),
        ("GET", "/api/state") => {
            let latest = hub.latest_frame();
            HttpResponse::json(&serde_json::json!({
                "latest_sequence": hub.latest_sequence(),
                "cycle": latest.as_ref().map(|f| f.cycle),
                "time": latest.as_ref().map(|f| f.time),
                "monitors": latest.as_ref().map(|f| f.monitors.clone()).unwrap_or_default(),
                "pending_steering": inbox.len(),
            }))
        }
        ("GET", "/api/frame") => match hub.latest_frame() {
            Some(frame) => HttpResponse::json(&frame_to_json(&frame)),
            None => HttpResponse::not_found(),
        },
        ("GET", "/api/poll") => {
            let since: u64 = req
                .query_param("since")
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            let timeout_ms: u64 = req
                .query_param("timeout_ms")
                .and_then(|s| s.parse().ok())
                .unwrap_or(15_000)
                .min(60_000);
            match hub.poll_after(since, Duration::from_millis(timeout_ms)) {
                Some(frame) => HttpResponse::json(&frame_to_json(&frame)),
                None => HttpResponse::json(&serde_json::json!({ "sequence": null })),
            }
        }
        ("POST", "/api/steer") => match serde_json::from_slice::<SteerableParams>(&req.body) {
            Ok(params) => {
                inbox.post(params.sanitized());
                HttpResponse::json(&serde_json::json!({ "accepted": true }))
            }
            Err(e) => HttpResponse::bad_request(&format!("invalid steering parameters: {e}")),
        },
        _ => HttpResponse::not_found(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn get(path: &str, query: &[(&str, &str)]) -> HttpRequest {
        HttpRequest {
            method: "GET".into(),
            path: path.into(),
            query: query
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            headers: HashMap::new(),
            body: vec![],
        }
    }

    fn sample_frame() -> Frame {
        Frame {
            sequence: 0,
            cycle: 4,
            time: 0.25,
            image: {
                let img = ricsa_viz::image::Image::filled(2, 2, [10, 20, 30, 255]);
                img.encode_raw()
            },
            monitors: vec![("max_pressure".into(), 2.5)],
        }
    }

    #[test]
    fn index_and_unknown_routes() {
        let hub = SessionHub::default();
        let inbox = SteeringInbox::new();
        let index = route(&hub, &inbox, get("/", &[]));
        assert_eq!(index.status, 200);
        assert!(String::from_utf8_lossy(&index.body).contains("XMLHttpRequest"));
        assert_eq!(route(&hub, &inbox, get("/nope", &[])).status, 404);
    }

    #[test]
    fn state_and_frame_routes_reflect_published_frames() {
        let hub = SessionHub::default();
        let inbox = SteeringInbox::new();
        assert_eq!(route(&hub, &inbox, get("/api/frame", &[])).status, 404);
        hub.publish(sample_frame());
        let state = route(&hub, &inbox, get("/api/state", &[]));
        let value: serde_json::Value = serde_json::from_slice(&state.body).unwrap();
        assert_eq!(value["latest_sequence"], 1);
        assert_eq!(value["cycle"], 4);
        let frame = route(&hub, &inbox, get("/api/frame", &[]));
        let value: serde_json::Value = serde_json::from_slice(&frame.body).unwrap();
        assert_eq!(value["sequence"], 1);
        let b64 = value["image_base64"].as_str().unwrap();
        assert!(b64.starts_with("UklDU0FJTUc")); // "RICSAIMG" in base64
    }

    #[test]
    fn poll_route_returns_new_frames_and_null_on_timeout() {
        let hub = SessionHub::default();
        let inbox = SteeringInbox::new();
        hub.publish(sample_frame());
        let poll = route(
            &hub,
            &inbox,
            get("/api/poll", &[("since", "0"), ("timeout_ms", "10")]),
        );
        let value: serde_json::Value = serde_json::from_slice(&poll.body).unwrap();
        assert_eq!(value["sequence"], 1);
        let empty = route(
            &hub,
            &inbox,
            get("/api/poll", &[("since", "1"), ("timeout_ms", "10")]),
        );
        let value: serde_json::Value = serde_json::from_slice(&empty.body).unwrap();
        assert!(value["sequence"].is_null());
    }

    #[test]
    fn steering_route_sanitizes_and_queues_parameters() {
        let hub = SessionHub::default();
        let inbox = SteeringInbox::new();
        let body = serde_json::json!({
            "gamma": 1.4, "cfl": 7.0, "drive_strength": 1.0,
            "inflow_velocity": 2.0, "end_cycle": 100
        });
        let req = HttpRequest {
            method: "POST".into(),
            path: "/api/steer".into(),
            query: HashMap::new(),
            headers: HashMap::new(),
            body: body.to_string().into_bytes(),
        };
        let resp = route(&hub, &inbox, req);
        assert_eq!(resp.status, 200);
        let queued = inbox.drain_latest().unwrap();
        assert!(
            queued.cfl <= 0.9,
            "cfl must be sanitized, got {}",
            queued.cfl
        );
        // Malformed body.
        let bad = HttpRequest {
            method: "POST".into(),
            path: "/api/steer".into(),
            query: HashMap::new(),
            headers: HashMap::new(),
            body: b"not json".to_vec(),
        };
        assert_eq!(route(&hub, &inbox, bad).status, 400);
    }

    #[test]
    fn base64_encoding_matches_known_vectors() {
        assert_eq!(base64_encode(b""), "");
        assert_eq!(base64_encode(b"f"), "Zg==");
        assert_eq!(base64_encode(b"fo"), "Zm8=");
        assert_eq!(base64_encode(b"foo"), "Zm9v");
        assert_eq!(base64_encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn full_server_round_trip() {
        use std::io::{Read, Write};
        let server = FrontEndServer::start("127.0.0.1:0").unwrap();
        server.hub().publish(sample_frame());
        let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(b"GET /api/state HTTP/1.1\r\nHost: localhost\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.contains("200 OK"));
        assert!(response.contains("latest_sequence"));
        server.shutdown();
    }
}
