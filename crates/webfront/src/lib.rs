//! The Ajax web front end.
//!
//! The paper's user interface is a Google-Web-Toolkit Ajax page: the browser
//! polls the front end with `XMLHttpRequest`, only the image component is
//! updated when a new frame arrives ("partial screen updates"), and steering
//! commands are posted back asynchronously.  This crate reproduces that
//! interaction pattern without external web frameworks:
//!
//! * [`http`] — a minimal HTTP/1.1 server over `std::net::TcpListener`
//!   (threaded, one connection per request),
//! * [`hub`] — the session hub: frames published by the visualization side,
//!   long-polled by any number of browser clients, plus a steering inbox,
//! * [`server`] — wiring the hub to HTTP routes (`/api/state`, `/api/frame`,
//!   `/api/poll`, `/api/steer`) and serving the embedded single-page client,
//! * [`page`] — the embedded HTML/JavaScript page (plain `XMLHttpRequest`
//!   long polling, no external assets).
//!
//! The front end is exercised end-to-end by `examples/web_steering.rs`,
//! which steers a live `ricsa-hydro` simulation from the browser (or from
//! `curl`).

pub mod http;
pub mod hub;
pub mod page;
pub mod server;

pub use http::{HttpRequest, HttpResponse, HttpServer};
pub use hub::{Frame, SessionHub, SteeringInbox};
pub use server::FrontEndServer;
