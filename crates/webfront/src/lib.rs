//! The Ajax web front end — built to serve many browsers at once.
//!
//! The paper's user interface is a Google-Web-Toolkit Ajax page: the browser
//! polls the front end with `XMLHttpRequest`, only the image component is
//! updated when a new frame arrives ("partial screen updates"), and steering
//! commands are posted back asynchronously.  This crate reproduces that
//! interaction pattern without external web frameworks, and scales it:
//!
//! * [`http`] — an HTTP/1.1 server on a fixed worker thread pool with
//!   keep-alive connections, pipelining-safe parsing, connection limits,
//!   deferred (non-blocking) long-poll responses, and graceful shutdown,
//! * [`hub`] — the session hub: frames published by the visualization side
//!   are base64/JSON-encoded exactly once into shared `Arc<str>` payloads
//!   (plus a changed-tile *delta* payload), long-polled by any number of
//!   browser clients with per-client cursors, plus a steering inbox,
//! * [`server`] — wiring the hub to HTTP routes (`/api/state`,
//!   `/api/client`, `/api/frame`, `/api/poll`, `/api/steer`) and serving
//!   the embedded single-page client,
//! * [`page`] — the embedded HTML/JavaScript page (plain `XMLHttpRequest`
//!   long polling in delta mode, no external assets),
//! * [`multi`] — many sessions behind one server: a live registry of
//!   per-session hubs/inboxes dispatched under `/s/<id>/...` routes.
//!
//! The front end is exercised end-to-end by `examples/web_steering.rs`,
//! which steers a live `ricsa-hydro` simulation from the browser (or from
//! `curl`), and load-tested by the `webfront_load` benchmark binary
//! (hundreds of concurrent pollers over real sockets).  DESIGN.md §7
//! documents the serving-layer architecture.

#![deny(missing_docs)]

pub mod http;
pub mod hub;
pub mod multi;
pub mod page;
pub mod readiness;
pub mod server;

pub use http::{HttpRequest, HttpResponse, HttpServer, HttpServerConfig, Outcome};
pub use hub::{Frame, FramePayload, PollMode, SessionHub, SteeringInbox};
pub use multi::{MultiFrontEnd, SessionEndpoints};
pub use readiness::{Backend, Waker};
pub use server::{FrontEndConfig, FrontEndServer};
