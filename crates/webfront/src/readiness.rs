//! Readiness-driven connection scheduling: park idle and long-polling
//! connections in the kernel instead of rotating them through the worker
//! pool.
//!
//! The rotation pool (the [`Backend::Pool`] path in [`crate::http`])
//! revisits every live connection roughly every
//! [`crate::http::POLL_INTERVAL`].  That is simple and portable, but the
//! cost is linear in *connections*, not in *activity*: ten thousand idle
//! long-pollers burn ten thousand visits per 2 ms tick to discover that
//! nothing changed.  This module adds the classic readiness design on top
//! of the same worker pool:
//!
//! * A `Reactor` owns an epoll instance (via the `epoll` shim).  When a
//!   worker visit makes no progress on a connection, the worker *parks* it
//!   in the reactor instead of requeueing it; the kernel now owns the
//!   wait.  A parked connection re-enters the run queue only when its
//!   socket becomes readable/writable, when its deadline passes, or — for
//!   long-polls — when the hub publishes a frame.
//! * A [`Waker`] is an `eventfd` doorbell the hub rings on publish.  The
//!   reactor sleeps inside `epoll_wait` with the doorbell registered, so a
//!   publish wakes every parked long-poll in one syscall, without any
//!   per-connection timer.
//! * The *publish generation* protocol closes the race between "handler
//!   checked the hub, found nothing" and "worker parked the connection":
//!   the worker snapshots the reactor's publish generation *before* the
//!   visit, and `Reactor::try_park` refuses (under the registry lock) if
//!   a publish has bumped the generation since.  The reactor bumps the
//!   generation under the same lock when the doorbell rings, so a publish
//!   either aborts the park (the worker re-polls and finds the frame) or
//!   finds the connection already in the registry and wakes it.  The hub
//!   stores the frame before ringing, so whichever side wins sees it.
//!
//! Route handlers are untouched: the [`crate::http::Outcome::Pending`]
//! contract was designed so the scheduler underneath could change.  On
//! platforms without epoll ([`Backend::auto`] probes at runtime) the
//! server keeps the rotation pool, bit-for-bit unchanged.

use crate::http::{Conn, PoolMetrics, Shared};
use epoll::{EventFd, Interest, Poller};
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the HTTP server schedules its connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The portable rotation pool: every live connection is revisited
    /// roughly every [`crate::http::POLL_INTERVAL`].  Cost grows with the
    /// connection count even when all of them are idle.
    Pool,
    /// Kernel readiness (epoll): unproductive connections are parked until
    /// the kernel reports their socket ready, their deadline passes, or
    /// the hub's [`Waker`] rings.  Cost grows with *activity*.  Falls back
    /// to [`Backend::Pool`] at runtime where epoll is unavailable.
    Readiness,
}

impl Backend {
    /// [`Backend::Readiness`] where the platform supports it (Linux),
    /// [`Backend::Pool`] elsewhere.
    pub fn auto() -> Backend {
        if epoll::is_supported() {
            Backend::Readiness
        } else {
            Backend::Pool
        }
    }
}

/// A publish doorbell: ringing it wakes every parked long-poll so the pool
/// re-checks their deferred responses.  Cheap (`Clone` is an `Arc` clone,
/// [`Waker::ring`] is one `write(2)` on an eventfd), safe to ring from any
/// thread, and rings coalesce while the reactor is busy.
#[derive(Debug, Clone)]
pub struct Waker {
    bell: Arc<EventFd>,
}

impl Waker {
    /// Ring the doorbell.  Never blocks.
    pub fn ring(&self) {
        self.bell.ring();
    }
}

/// Registration key reserved for the reactor's own doorbell.
const BELL_KEY: u64 = u64::MAX;

/// Upper bound between reactor wake-ups, so the stop flag is observed
/// promptly even if the doorbell ring is lost to a platform quirk.
const MAX_WAIT: Duration = Duration::from_millis(100);

/// Park deadline for a connection holding a deferred (long-poll) response:
/// even with no publish and no socket activity, the pending closure is
/// re-polled at least this often, which bounds how late its own timeout
/// response can be.  Far above the pool's 2 ms rotation — that is the
/// point: a parked long-poll costs ~20 closure polls per second instead of
/// ~500, and publishes still wake it in microseconds via the [`Waker`].
pub(crate) const PENDING_RECHECK: Duration = Duration::from_millis(50);

/// Slack added to the keep-alive deadline of parked idle connections, so
/// the worker visit that closes them sees the timeout as unambiguously
/// expired.
const IDLE_DEADLINE_SLACK: Duration = Duration::from_millis(20);

/// One parked connection.
struct ParkedConn {
    conn: Conn,
    /// Re-run the connection when the hub publishes (it holds a deferred
    /// long-poll response), not only on socket readiness.
    wake_on_publish: bool,
}

/// The reactor's bookkeeping, behind one mutex: which connections are
/// parked (keyed by their epoll registration key) and when each must be
/// revisited regardless of socket state.  Deadlines use lazy deletion —
/// an entry whose key is no longer parked is discarded when popped.
struct Registry {
    parked: HashMap<u64, ParkedConn>,
    deadlines: BinaryHeap<Reverse<(Instant, u64)>>,
    next_key: u64,
}

/// The readiness core: an epoll instance, the publish doorbell, and the
/// parked-connection registry.  One reactor thread sleeps in
/// [`Poller::wait`]; worker threads park connections into it via
/// [`Reactor::try_park`].
pub(crate) struct Reactor {
    poller: Poller,
    bell: Arc<EventFd>,
    registry: Mutex<Registry>,
    /// Bumped (under the registry lock) every time the doorbell is
    /// serviced; see the module docs for the race this closes.
    publish_gen: AtomicU64,
    keep_alive: Duration,
    metrics: Arc<PoolMetrics>,
}

fn raw_fd(stream: &TcpStream) -> epoll::RawFd {
    #[cfg(unix)]
    {
        use std::os::fd::AsRawFd;
        stream.as_raw_fd()
    }
    #[cfg(not(unix))]
    {
        let _ = stream;
        -1
    }
}

impl Reactor {
    /// Create the reactor, or fail where epoll is unsupported (the caller
    /// falls back to the rotation pool).
    pub(crate) fn new(
        keep_alive: Duration,
        metrics: Arc<PoolMetrics>,
    ) -> std::io::Result<Arc<Reactor>> {
        let poller = Poller::new()?;
        let bell = Arc::new(EventFd::new()?);
        poller.add(bell.as_raw_fd(), BELL_KEY, Interest::readable())?;
        Ok(Arc::new(Reactor {
            poller,
            bell,
            registry: Mutex::new(Registry {
                parked: HashMap::new(),
                deadlines: BinaryHeap::new(),
                next_key: 0,
            }),
            publish_gen: AtomicU64::new(0),
            keep_alive,
            metrics,
        }))
    }

    /// The doorbell handle the hub rings on publish.
    pub(crate) fn waker(&self) -> Waker {
        Waker {
            bell: self.bell.clone(),
        }
    }

    /// Current publish generation; workers snapshot this *before* a visit
    /// and hand it back to [`Reactor::try_park`].
    pub(crate) fn publish_gen(&self) -> u64 {
        self.publish_gen.load(Ordering::SeqCst)
    }

    /// Park a connection that made no progress this visit.  Returns the
    /// connection back (`Err`) when parking is refused — a publish raced
    /// the visit, or the kernel rejected the registration — in which case
    /// the caller requeues it for an immediate re-visit.  The large
    /// `Err` variant is the point: a refused park must hand the whole
    /// connection back by value, not a reference into the registry.
    #[allow(clippy::result_large_err)]
    pub(crate) fn try_park(&self, conn: Conn, gen_at_visit: u64) -> Result<(), Conn> {
        let now = Instant::now();
        let wake_on_publish = conn.pending.is_some();
        let mut registry = self.registry.lock();
        if wake_on_publish && self.publish_gen.load(Ordering::SeqCst) != gen_at_visit {
            // A frame was published after the handler last looked at the
            // hub; parking now could strand the long-poll for a full
            // PENDING_RECHECK.  Re-visit instead.
            return Err(conn);
        }
        let interest = Interest {
            readable: !conn.saw_eof,
            writable: !conn.out_is_empty(),
            oneshot: true,
        };
        let deadline = if wake_on_publish {
            now + PENDING_RECHECK
        } else {
            conn.last_activity + self.keep_alive + IDLE_DEADLINE_SLACK
        };
        let key = registry.next_key;
        registry.next_key += 1;
        if self
            .poller
            .add(raw_fd(&conn.stream), key, interest)
            .is_err()
        {
            return Err(conn);
        }
        registry.deadlines.push(Reverse((deadline, key)));
        registry.parked.insert(
            key,
            ParkedConn {
                conn,
                wake_on_publish,
            },
        );
        self.metrics.set_parked(registry.parked.len());
        Ok(())
    }

    /// Remove one parked connection (deleting its epoll registration) and
    /// mark it due immediately.  Caller holds the registry lock.
    fn unpark(&self, registry: &mut Registry, key: u64, now: Instant, out: &mut Vec<Conn>) {
        if let Some(parked) = registry.parked.remove(&key) {
            let mut conn = parked.conn;
            let _ = self.poller.delete(raw_fd(&conn.stream));
            conn.next_check = now;
            out.push(conn);
        }
    }

    /// The reactor thread body: sleep in `epoll_wait`, move woken
    /// connections back to the run queue, and drain everything on stop.
    pub(crate) fn run(&self, shared: &Shared) {
        let mut events = Vec::new();
        loop {
            if shared.stop.load(Ordering::Relaxed) {
                // Hand every parked connection back so the drain path can
                // flush and close it.
                let mut registry = self.registry.lock();
                let keys: Vec<u64> = registry.parked.keys().copied().collect();
                let mut woken = Vec::with_capacity(keys.len());
                let now = Instant::now();
                for key in keys {
                    self.unpark(&mut registry, key, now, &mut woken);
                }
                self.metrics.set_parked(0);
                drop(registry);
                shared.push_batch(woken);
                return;
            }
            let timeout = {
                let mut registry = self.registry.lock();
                let mut next: Option<Instant> = None;
                while let Some(&Reverse((when, key))) = registry.deadlines.peek() {
                    if registry.parked.contains_key(&key) {
                        next = Some(when);
                        break;
                    }
                    registry.deadlines.pop(); // lazily dropped stale entry
                }
                match next {
                    Some(when) => when.saturating_duration_since(Instant::now()).min(MAX_WAIT),
                    None => MAX_WAIT,
                }
            };
            let _ = self.poller.wait(&mut events, 1024, Some(timeout));
            let now = Instant::now();
            let mut woken = Vec::new();
            let mut registry = self.registry.lock();
            let mut bell_rang = false;
            for event in &events {
                if event.key == BELL_KEY {
                    bell_rang = true;
                } else {
                    self.unpark(&mut registry, event.key, now, &mut woken);
                }
            }
            if bell_rang {
                self.bell.drain();
                // Generation bump and sweep happen under the registry
                // lock: any in-flight try_park either sees the new
                // generation (and refuses) or has already inserted its
                // connection (and the sweep below wakes it).
                self.publish_gen.fetch_add(1, Ordering::SeqCst);
                let due: Vec<u64> = registry
                    .parked
                    .iter()
                    .filter(|(_, p)| p.wake_on_publish)
                    .map(|(&k, _)| k)
                    .collect();
                for key in due {
                    self.unpark(&mut registry, key, now, &mut woken);
                }
            }
            while let Some(&Reverse((when, key))) = registry.deadlines.peek() {
                if when > now {
                    break;
                }
                registry.deadlines.pop();
                self.unpark(&mut registry, key, now, &mut woken);
            }
            self.metrics.set_parked(registry.parked.len());
            drop(registry);
            if !woken.is_empty() {
                shared.push_batch(woken);
            }
        }
    }
}
