//! Monitor and steer a live simulation from a web browser.
//!
//! Starts the Ajax front end on a local port, runs a Sod shock-tube
//! simulation in-process, renders a pressure isosurface every few cycles and
//! publishes it to the long-polling hub — the full RICSA user experience:
//! open the printed URL in a browser (or `curl .../api/state`), watch the
//! image update, and POST steering parameters while the run is in flight.
//!
//! Run with: `cargo run --release --example web_steering`
//! (set `RICSA_WEB_CYCLES` to control how long the simulation runs).

use ricsa::core::api::{SimulationCommand, SimulationServer};
use ricsa::hydro::problems::Problem;
use ricsa::hydro::steering::SteerableParams;
use ricsa::viz::camera::Camera;
use ricsa::viz::isosurface::extract_isosurface;
use ricsa::viz::render::render_mesh;
use ricsa::vizdata::field::Dims;
use ricsa::webfront::hub::Frame;
use ricsa::webfront::server::{FrontEndConfig, FrontEndServer};

fn main() {
    let cycles: u64 = std::env::var("RICSA_WEB_CYCLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400);

    // The default pool (8 workers, 1024 connections) is far more than one
    // browser needs; it is the same configuration the `webfront_load`
    // bench drives with hundreds of concurrent pollers.
    let config = FrontEndConfig::default();
    let front_end = FrontEndServer::start_with("127.0.0.1:8640", config.clone())
        .or_else(|_| FrontEndServer::start_with("127.0.0.1:0", config))
        .expect("bind the Ajax front end");
    println!(
        "RICSA Ajax front end listening on http://{}/",
        front_end.addr()
    );
    println!("  GET  /api/state   — monitored state as JSON");
    println!("  GET  /api/client  — register a polling client id");
    println!("  GET  /api/poll    — long-poll for the next frame (mode=delta for tiles)");
    println!("  POST /api/steer   — submit steering parameters");
    let hub = front_end.hub();
    let inbox = front_end.inbox();

    // The simulation side (the paper's DS node), in-process.
    let mut server = SimulationServer::startup();
    let (commands, datasets) = server.wait_accept_connection();
    commands
        .send(SimulationCommand::Start {
            problem: Problem::SodShockTube,
            dims: Dims::new(128, 32, 16),
            params: SteerableParams {
                end_cycle: cycles,
                ..SteerableParams::default()
            },
        })
        .unwrap();

    let camera = Camera::with_viewport(256, 256);
    while server.run_cycle() {
        // Steering commands posted from the browser are applied between
        // cycles, exactly like RICSA_UpdateSimulationParameters.
        if let Some(params) = inbox.drain_latest() {
            println!("steering update from the web client: {params:?}");
            commands
                .send(SimulationCommand::UpdateParameters(SteerableParams {
                    end_cycle: cycles,
                    ..params
                }))
                .unwrap();
        }
        // Publish a frame every 5 cycles: extract + render the pressure
        // field and push it to the Ajax hub (only the image component of the
        // page updates).
        if server.cycle().is_multiple_of(5) {
            if let Some(snapshot) = datasets.try_iter().last() {
                let pressure = snapshot.variable("pressure").expect("published variable");
                let (lo, hi) = pressure.value_range();
                let iso = lo + 0.5 * (hi - lo);
                let surface = extract_isosurface(pressure, iso, 16);
                let image = render_mesh(&surface.mesh, &camera, [0.85, 0.55, 0.25]);
                let max_p = pressure.data.iter().cloned().fold(f32::MIN, f32::max);
                hub.publish(Frame {
                    sequence: 0,
                    cycle: snapshot.cycle,
                    time: snapshot.time,
                    image: image.encode_raw(),
                    monitors: vec![
                        ("max pressure".into(), max_p as f64),
                        ("isovalue".into(), iso as f64),
                        ("triangles".into(), surface.mesh.triangle_count() as f64),
                    ],
                });
            }
        }
    }
    println!(
        "simulation finished after {} cycles; {} frames published; front end stays up for 10 s",
        server.cycle(),
        hub.latest_sequence()
    );
    std::thread::sleep(std::time::Duration::from_secs(10));
    front_end.shutdown();
}
