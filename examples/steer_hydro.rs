//! Steer a live hydrodynamics simulation through the RICSA API.
//!
//! Reproduces the paper's Fig. 7 integration pattern: a VH1-like solver runs
//! its `sweepx; sweepy; sweepz;` main loop with the six `RICSA_*` hooks, a
//! "scientist" watches the monitored quantities, notices the run straying,
//! and steers it back by updating parameters mid-flight — the runaway-
//! computation scenario the introduction motivates.
//!
//! Run with: `cargo run --release --example steer_hydro`

use ricsa::core::api::{SimulationCommand, SimulationServer};
use ricsa::hydro::problems::Problem;
use ricsa::hydro::steering::SteerableParams;
use ricsa::viz::camera::Camera;
use ricsa::viz::isosurface::extract_isosurface;
use ricsa::viz::render::render_mesh;
use ricsa::vizdata::field::Dims;

fn main() {
    // RICSA_StartupSimulationServer / RICSA_WaitAcceptConnection.
    let mut server = SimulationServer::startup();
    let (commands, datasets) = server.wait_accept_connection();

    // The client requests a bow-shock run with a deliberately weak wind.
    commands
        .send(SimulationCommand::Start {
            problem: Problem::BowShock,
            dims: Dims::new(96, 64, 1),
            params: SteerableParams {
                drive_strength: 0.2,
                inflow_velocity: 3.0,
                end_cycle: 120,
                ..SteerableParams::default()
            },
        })
        .expect("server accepts commands");

    let mut steered = false;
    while server.run_cycle() {
        // The monitoring side: every pushed snapshot is inspected; the
        // maximum pressure tells the scientist whether the bow shock is
        // forming.
        if let Some(snapshot) = datasets.try_iter().last() {
            let pressure = snapshot
                .variable("pressure")
                .expect("pressure is published");
            let max_p = pressure.data.iter().cloned().fold(f32::MIN, f32::max);
            if server.cycle().is_multiple_of(20) {
                println!(
                    "cycle {:>4}  t={:.4}  max pressure = {max_p:.3}",
                    snapshot.cycle, snapshot.time
                );
            }
            // Steering decision: the weak wind never builds a shock, so at
            // cycle 40 the scientist cranks the wind up instead of letting
            // the allocation run out — the "saving a stray simulation" case.
            if !steered && snapshot.cycle >= 40 && max_p < 3.0 {
                println!(">>> steering: raising drive strength 0.2 -> 2.5");
                commands
                    .send(SimulationCommand::UpdateParameters(SteerableParams {
                        drive_strength: 2.5,
                        inflow_velocity: 3.0,
                        end_cycle: 120,
                        ..SteerableParams::default()
                    }))
                    .unwrap();
                steered = true;
            }
        }
    }

    // Render the final pressure field the way the CS node would.
    let final_snapshot = datasets.try_iter().last();
    let fallback = server.push_data_to_viz_node();
    let snapshot = datasets
        .try_iter()
        .last()
        .or(final_snapshot)
        .expect("at least one snapshot was produced");
    let _ = fallback;
    let pressure = snapshot.variable("pressure").unwrap();
    let (lo, hi) = pressure.value_range();
    let iso = lo + 0.6 * (hi - lo);
    let surface = extract_isosurface(pressure, iso, 16);
    let image = render_mesh(
        &surface.mesh,
        &Camera::with_viewport(256, 256),
        [0.9, 0.6, 0.2],
    );
    let path = std::env::temp_dir().join("ricsa_bowshock.ppm");
    std::fs::write(&path, image.encode_ppm()).expect("image written");
    println!(
        "\nFinished after {} cycles; steering {}.",
        server.cycle(),
        if steered {
            "was applied"
        } else {
            "was not needed"
        }
    );
    println!(
        "Final pressure isosurface: {} triangles, rendered to {}",
        surface.mesh.triangle_count(),
        path.display()
    );
}
