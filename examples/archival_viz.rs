//! Remote visualization of archival datasets (no live simulation).
//!
//! The paper notes that "in addition to real-time simulation programs, RICSA
//! can also support remote visualization for archival datasets".  This
//! example plans the optimal loop for each of the three archival datasets,
//! compares it against the PC–PC baseline and ParaView-style deployment
//! using the analytical delay model, and then actually runs the local
//! visualization pipeline (filter → isosurface → render) on a reduced-
//! resolution preview of each dataset to produce an image.
//!
//! Run with: `cargo run --release --example archival_viz`

use ricsa::core::catalog::{standard_pipeline, SimulationCatalog};
use ricsa::netsim::presets::{fig8_topology, Fig8Site};
use ricsa::pipemap::baselines::{client_server_mapping, paraview_crs_mapping};
use ricsa::pipemap::dp::optimize;
use ricsa::pipemap::network::NetGraph;
use ricsa::pipemap::vrt::VisualizationRoutingTable;
use ricsa::viz::camera::Camera;
use ricsa::viz::filtering::{apply_filter, FilterParams};
use ricsa::viz::isosurface::extract_isosurface;
use ricsa::viz::render::render_mesh;
use ricsa::vizdata::dataset::DatasetKind;
use ricsa::vizdata::io::VolumeContainer;

fn main() {
    let fig8 = fig8_topology();
    let graph = NetGraph::from_topology(&fig8.topology);
    let catalog = SimulationCatalog::default();
    let gatech = graph.index_of(fig8.node(Fig8Site::GaTech));
    let ut = graph.index_of(fig8.node(Fig8Site::UtCluster));
    let ornl = graph.index_of(fig8.node(Fig8Site::Ornl));

    println!("Analytical end-to-end delay per dataset (seconds):");
    println!(
        "{:<14}{:>12}{:>12}{:>14}   optimal loop",
        "dataset", "optimal", "PC-PC", "ParaView-crs"
    );
    for kind in DatasetKind::ALL {
        let dataset = catalog.datasets.get(kind);
        let pipeline = standard_pipeline(dataset.nominal_bytes(), &catalog.costs);
        let optimal = optimize(&pipeline, &graph, gatech, ornl).expect("feasible");
        let pc_pc = client_server_mapping(&pipeline, &graph, gatech, ornl)
            .map(|(_, d)| d.total)
            .unwrap_or(f64::NAN);
        let paraview = paraview_crs_mapping(&pipeline, &graph, gatech, ut, ornl, 1.3)
            .map(|(_, d)| d.total)
            .unwrap_or(f64::NAN);
        let vrt = VisualizationRoutingTable::from_mapping(
            &pipeline,
            &graph,
            &optimal.mapping,
            optimal.delay.total,
        );
        println!(
            "{:<14}{:>12.2}{:>12.2}{:>14.2}   {}",
            format!("{}({:.0}MB)", kind.name(), dataset.nominal_megabytes()),
            optimal.delay.total,
            pc_pc,
            paraview,
            vrt.describe()
        );
    }

    // Now run the actual pipeline locally on reduced-resolution previews.
    println!("\nLocal pipeline run on preview volumes:");
    for kind in DatasetKind::ALL {
        let dataset = catalog.datasets.get(kind);
        let field = dataset.generate_preview(400_000);
        let mut container = VolumeContainer::new(0, 0.0);
        container.push("pressure", field);
        let filtered = apply_filter(&container, &FilterParams::default()).expect("filtering");
        let (lo, hi) = filtered.value_range();
        let iso = lo + 0.5 * (hi - lo);
        let surface = extract_isosurface(&filtered, iso, 16);
        let image = render_mesh(
            &surface.mesh,
            &Camera::with_viewport(256, 256),
            [0.4, 0.7, 0.9],
        );
        let path = std::env::temp_dir().join(format!("ricsa_{}.ppm", kind.name().to_lowercase()));
        std::fs::write(&path, image.encode_ppm()).expect("image written");
        println!(
            "  {:<10} preview {:>3}^3 voxels  active blocks {:>4}/{:<4}  {:>7} triangles  -> {}",
            kind.name(),
            filtered.dims.nx,
            surface.active_blocks,
            surface.total_blocks,
            surface.mesh.triangle_count(),
            path.display()
        );
    }
}
