//! Quickstart: plan and simulate one RICSA steering session.
//!
//! Builds the paper's Fig. 8 deployment, lets the optimizer choose the
//! visualization loop for the Rage dataset, simulates one monitoring
//! iteration over the wide-area network, and prints the routing table,
//! the predicted delay and the measured delay.
//!
//! Run with: `cargo run --release --example quickstart`

use ricsa::core::catalog::SimulationCatalog;
use ricsa::core::session::{PathChoice, SteeringSession};
use ricsa::netsim::presets::{fig8_topology, Fig8Site};
use ricsa::netsim::sim::Simulator;
use ricsa::netsim::time::SimTime;

fn main() {
    // 1. The wide-area deployment of the paper's Fig. 8.
    let fig8 = fig8_topology();
    println!("Deployment sites:");
    for (site, node) in fig8.sites() {
        let spec = fig8.topology.node(*node).unwrap();
        println!(
            "  {:<8} power={:<4} cluster={} graphics={}",
            site.name(),
            spec.compute_power,
            spec.capabilities.is_cluster,
            spec.capabilities.has_graphics
        );
    }

    // 2. Plan a steering session: the Rage dataset served from GaTech,
    //    visualized at ORNL, with the optimizer choosing the pipeline
    //    mapping (this is what the CM node does when a request arrives).
    let catalog = SimulationCatalog::default();
    let plan = SteeringSession::plan(
        1,
        &fig8.topology,
        &catalog,
        "Rage",
        fig8.node(Fig8Site::GaTech),
        fig8.node(Fig8Site::Ornl),
        &PathChoice::Optimal,
    )
    .expect("the Fig. 8 deployment always admits a mapping");

    println!("\nChosen visualization loop: {}", plan.vrt.describe());
    println!(
        "Predicted end-to-end delay: {:.2} s ({:.2} s computing + {:.2} s transport)",
        plan.predicted.total, plan.predicted.computing, plan.predicted.transport
    );

    // 3. Simulate one monitoring iteration over the WAN: the dataset flows
    //    hop by hop over the Robbins–Monro transport, modules occupy their
    //    predicted processing times, and the image lands at ORNL.
    let mut sim = Simulator::new(fig8.topology.clone(), 42);
    SteeringSession::install(&plan, &mut sim, fig8.node(Fig8Site::Lsu), 1, 200e6);
    let delays = SteeringSession::run(&mut sim, 1, SimTime::from_secs(600.0));

    match delays.first() {
        Some(measured) => println!("Measured end-to-end delay:  {measured:.2} s"),
        None => println!("The iteration did not complete within the virtual-time budget"),
    }
    println!(
        "Simulated {} events, {} datagrams delivered, {} dropped",
        sim.stats().events_processed,
        sim.stats().datagrams_delivered,
        sim.stats().datagrams_dropped
    );
}
